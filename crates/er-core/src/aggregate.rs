//! Attribute-weighted pair similarity.
//!
//! The paper computes pair similarity "by aggregating attribute similarities with
//! weights", where "the weight of each attribute is determined by the number of
//! its distinct attribute values". This module implements that scheme:
//! a [`PairScorer`] evaluates a configured similarity measure per attribute and
//! combines the scores with per-attribute weights, renormalizing over the
//! attributes actually present on both records.

use crate::record::{Dataset, Record};
use crate::similarity::StringMeasure;
use crate::similarity::{absolute_difference_similarity, relative_difference_similarity};
use crate::{AttributeValue, ErError, Result};

/// How per-attribute weights are derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttributeWeighting {
    /// All attributes weigh the same.
    Uniform,
    /// Each attribute is weighted by its number of distinct values across the
    /// datasets being matched (the paper's rule): attributes with many distinct
    /// values are more discriminative and therefore weigh more.
    DistinctValues,
}

/// How a single attribute contributes to the pair similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttributeMeasure {
    /// Compare attribute texts with a string measure.
    Text(StringMeasure),
    /// Compare numeric attributes with `max(0, 1 - |a-b|/tolerance)`.
    NumberAbsolute {
        /// The difference at which similarity reaches zero.
        tolerance: f64,
    },
    /// Compare numeric attributes with `1 - |a-b| / max(|a|,|b|)`.
    NumberRelative,
}

impl AttributeMeasure {
    fn eval(&self, a: &AttributeValue, b: &AttributeValue) -> Option<f64> {
        match self {
            AttributeMeasure::Text(measure) => match (a.as_text(), b.as_text()) {
                (Some(ta), Some(tb)) => Some(measure.eval(ta, tb)),
                _ => None,
            },
            AttributeMeasure::NumberAbsolute { tolerance } => {
                match (a.as_number(), b.as_number()) {
                    (Some(na), Some(nb)) => {
                        Some(absolute_difference_similarity(na, nb, *tolerance))
                    }
                    _ => None,
                }
            }
            AttributeMeasure::NumberRelative => match (a.as_number(), b.as_number()) {
                (Some(na), Some(nb)) => Some(relative_difference_similarity(na, nb)),
                _ => None,
            },
        }
    }
}

/// Configuration of a [`PairScorer`]: which attributes to compare, how, and how to weight them.
#[derive(Debug, Clone)]
pub struct ScoringConfig {
    /// `(attribute name, measure)` pairs.
    pub attributes: Vec<(String, AttributeMeasure)>,
    /// Weighting rule.
    pub weighting: AttributeWeighting,
}

impl ScoringConfig {
    /// Creates a configuration comparing the given attributes with the given measures.
    pub fn new(
        attributes: impl IntoIterator<Item = (impl Into<String>, AttributeMeasure)>,
        weighting: AttributeWeighting,
    ) -> Self {
        Self { attributes: attributes.into_iter().map(|(n, m)| (n.into(), m)).collect(), weighting }
    }
}

/// A configured attribute with its resolved weight.
#[derive(Debug, Clone)]
struct WeightedAttribute {
    name: String,
    measure: AttributeMeasure,
    weight: f64,
}

/// Computes weighted pair similarities between records.
#[derive(Debug, Clone)]
pub struct PairScorer {
    attributes: Vec<WeightedAttribute>,
}

impl PairScorer {
    /// Builds a scorer from a configuration and the datasets being matched.
    ///
    /// The datasets are only consulted when [`AttributeWeighting::DistinctValues`]
    /// is selected, to count distinct values per attribute.
    pub fn new(config: &ScoringConfig, datasets: &[&Dataset]) -> Result<Self> {
        if config.attributes.is_empty() {
            return Err(ErError::InvalidArgument(
                "scoring configuration must name at least one attribute".to_string(),
            ));
        }
        let mut attributes = Vec::with_capacity(config.attributes.len());
        for (name, measure) in &config.attributes {
            let weight = match config.weighting {
                AttributeWeighting::Uniform => 1.0,
                AttributeWeighting::DistinctValues => {
                    let count: usize = datasets.iter().map(|d| d.distinct_value_count(name)).sum();
                    // An attribute absent from every dataset still participates with a
                    // minimal weight so the scorer never divides by zero.
                    (count as f64).max(1.0)
                }
            };
            attributes.push(WeightedAttribute { name: name.clone(), measure: *measure, weight });
        }
        Ok(Self { attributes })
    }

    /// Builds a scorer with explicit per-attribute weights (bypassing the weighting rule).
    pub fn with_weights(
        attributes: impl IntoIterator<Item = (impl Into<String>, AttributeMeasure, f64)>,
    ) -> Result<Self> {
        let attributes: Vec<WeightedAttribute> = attributes
            .into_iter()
            .map(|(n, m, w)| WeightedAttribute { name: n.into(), measure: m, weight: w })
            .collect();
        if attributes.is_empty() {
            return Err(ErError::InvalidArgument(
                "scorer needs at least one attribute".to_string(),
            ));
        }
        if attributes.iter().any(|a| a.weight < 0.0 || !a.weight.is_finite()) {
            return Err(ErError::InvalidArgument(
                "attribute weights must be finite and non-negative".to_string(),
            ));
        }
        Ok(Self { attributes })
    }

    /// The attribute names this scorer compares, with their weights.
    pub fn weights(&self) -> Vec<(&str, f64)> {
        self.attributes.iter().map(|a| (a.name.as_str(), a.weight)).collect()
    }

    /// Per-attribute similarity scores for a record pair (`None` where either side
    /// is missing or of the wrong type). Useful as a feature vector for classifiers.
    pub fn attribute_scores(&self, a: &Record, b: &Record) -> Vec<Option<f64>> {
        self.attributes
            .iter()
            .map(|attr| attr.measure.eval(a.get(&attr.name), b.get(&attr.name)))
            .collect()
    }

    /// Weighted aggregate similarity of a record pair in `[0, 1]`.
    ///
    /// Attributes missing on either side are excluded and the remaining weights are
    /// renormalized; if every attribute is missing the pair scores `0`.
    pub fn score(&self, a: &Record, b: &Record) -> f64 {
        let mut weighted_sum = 0.0;
        let mut weight_total = 0.0;
        for attr in &self.attributes {
            if let Some(sim) = attr.measure.eval(a.get(&attr.name), b.get(&attr.name)) {
                weighted_sum += attr.weight * sim;
                weight_total += attr.weight;
            }
        }
        if weight_total == 0.0 {
            0.0
        } else {
            (weighted_sum / weight_total).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, RecordId, Schema};
    use crate::text::Tokenizer;

    fn paper_record(id: u64, title: &str, venue: &str) -> Record {
        Record::new(RecordId(id)).with("title", title).with("venue", venue)
    }

    fn bib_dataset(records: Vec<Record>) -> Dataset {
        let mut ds = Dataset::new("test", Schema::new(["title", "venue", "year"]));
        for r in records {
            ds.push(r).unwrap();
        }
        ds
    }

    fn title_venue_config() -> ScoringConfig {
        ScoringConfig::new(
            [
                ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
                ("venue", AttributeMeasure::Text(StringMeasure::JaroWinkler)),
            ],
            AttributeWeighting::DistinctValues,
        )
    }

    #[test]
    fn identical_records_score_one() {
        let ds = bib_dataset(vec![
            paper_record(1, "entity resolution", "icde"),
            paper_record(2, "record linkage", "vldb"),
        ]);
        let scorer = PairScorer::new(&title_venue_config(), &[&ds]).unwrap();
        let a = paper_record(10, "entity resolution", "icde");
        assert!((scorer.score(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unrelated_records_score_low() {
        let ds = bib_dataset(vec![paper_record(1, "entity resolution", "icde")]);
        let scorer = PairScorer::new(&title_venue_config(), &[&ds]).unwrap();
        let a = paper_record(10, "entity resolution with quality guarantees", "icde");
        let b = paper_record(11, "deep convolutional networks", "nips");
        assert!(scorer.score(&a, &b) < 0.5);
        assert!(scorer.score(&a, &b) >= 0.0);
    }

    #[test]
    fn missing_attributes_renormalize_weights() {
        let ds = bib_dataset(vec![paper_record(1, "entity resolution", "icde")]);
        let scorer = PairScorer::new(&title_venue_config(), &[&ds]).unwrap();
        let full = paper_record(10, "entity resolution", "icde");
        let missing_venue = Record::new(RecordId(11)).with("title", "entity resolution");
        // Only the title attribute participates, and the titles are identical.
        assert!((scorer.score(&full, &missing_venue) - 1.0).abs() < 1e-12);
        // A record with no comparable attributes scores 0.
        let empty = Record::new(RecordId(12));
        assert_eq!(scorer.score(&full, &empty), 0.0);
    }

    #[test]
    fn distinct_value_weighting_prefers_discriminative_attributes() {
        // Titles are all distinct; venue has a single value, so title carries more weight.
        let ds = bib_dataset(vec![
            paper_record(1, "paper one", "icde"),
            paper_record(2, "paper two", "icde"),
            paper_record(3, "paper three", "icde"),
        ]);
        let scorer = PairScorer::new(&title_venue_config(), &[&ds]).unwrap();
        let weights = scorer.weights();
        let title_weight = weights.iter().find(|(n, _)| *n == "title").unwrap().1;
        let venue_weight = weights.iter().find(|(n, _)| *n == "venue").unwrap().1;
        assert!(title_weight > venue_weight);

        // Same titles, different venue: should still score high because venue weighs little.
        let a = paper_record(10, "matching paper", "icde");
        let b = paper_record(11, "matching paper", "sigmod");
        assert!(scorer.score(&a, &b) > 0.7);
    }

    #[test]
    fn numeric_attribute_measures() {
        let scorer = PairScorer::with_weights([
            ("year", AttributeMeasure::NumberAbsolute { tolerance: 10.0 }, 1.0),
            ("price", AttributeMeasure::NumberRelative, 1.0),
        ])
        .unwrap();
        let a = Record::new(RecordId(1)).with("year", 2000.0).with("price", 100.0);
        let b = Record::new(RecordId(2)).with("year", 2005.0).with("price", 50.0);
        // year: 1 - 5/10 = 0.5; price: 1 - 50/100 = 0.5 → aggregate 0.5.
        assert!((scorer.score(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn attribute_scores_expose_feature_vector() {
        let scorer = PairScorer::with_weights([
            ("title", AttributeMeasure::Text(StringMeasure::Levenshtein), 1.0),
            ("year", AttributeMeasure::NumberAbsolute { tolerance: 5.0 }, 1.0),
        ])
        .unwrap();
        let a = Record::new(RecordId(1)).with("title", "abc").with("year", 2000.0);
        let b = Record::new(RecordId(2)).with("title", "abc");
        let scores = scorer.attribute_scores(&a, &b);
        assert_eq!(scores.len(), 2);
        assert!((scores[0].unwrap() - 1.0).abs() < 1e-12);
        assert!(scores[1].is_none());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let ds = bib_dataset(vec![]);
        let empty = ScoringConfig::new(
            Vec::<(String, AttributeMeasure)>::new(),
            AttributeWeighting::Uniform,
        );
        assert!(PairScorer::new(&empty, &[&ds]).is_err());
        assert!(PairScorer::with_weights([(
            "title",
            AttributeMeasure::Text(StringMeasure::Jaro),
            -1.0
        )])
        .is_err());
    }
}
