//! Attribute-weighted pair similarity.
//!
//! The paper computes pair similarity "by aggregating attribute similarities with
//! weights", where "the weight of each attribute is determined by the number of
//! its distinct attribute values". This module implements that scheme:
//! a [`PairScorer`] evaluates a configured similarity measure per attribute and
//! combines the scores with per-attribute weights, renormalizing over the
//! attributes actually present on both records.

use crate::record::{Dataset, Record, RecordId};
use crate::similarity::StringMeasure;
use crate::similarity::{
    absolute_difference_similarity, dice_similarity, jaccard_similarity, overlap_coefficient,
    relative_difference_similarity, tf_cosine_similarity,
};
use crate::text::Tokenizer;
use crate::{AttributeValue, ErError, Result};
use std::collections::HashMap;

/// How per-attribute weights are derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttributeWeighting {
    /// All attributes weigh the same.
    Uniform,
    /// Each attribute is weighted by its number of distinct values across the
    /// datasets being matched (the paper's rule): attributes with many distinct
    /// values are more discriminative and therefore weigh more.
    DistinctValues,
}

/// How a single attribute contributes to the pair similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttributeMeasure {
    /// Compare attribute texts with a string measure.
    Text(StringMeasure),
    /// Compare numeric attributes with `max(0, 1 - |a-b|/tolerance)`.
    NumberAbsolute {
        /// The difference at which similarity reaches zero.
        tolerance: f64,
    },
    /// Compare numeric attributes with `1 - |a-b| / max(|a|,|b|)`.
    NumberRelative,
}

impl AttributeMeasure {
    fn eval(&self, a: &AttributeValue, b: &AttributeValue) -> Option<f64> {
        match self {
            AttributeMeasure::Text(measure) => match (a.as_text(), b.as_text()) {
                (Some(ta), Some(tb)) => Some(measure.eval(ta, tb)),
                _ => None,
            },
            AttributeMeasure::NumberAbsolute { tolerance } => {
                match (a.as_number(), b.as_number()) {
                    (Some(na), Some(nb)) => {
                        Some(absolute_difference_similarity(na, nb, *tolerance))
                    }
                    _ => None,
                }
            }
            AttributeMeasure::NumberRelative => match (a.as_number(), b.as_number()) {
                (Some(na), Some(nb)) => Some(relative_difference_similarity(na, nb)),
                _ => None,
            },
        }
    }
}

/// Configuration of a [`PairScorer`]: which attributes to compare, how, and how to weight them.
#[derive(Debug, Clone)]
pub struct ScoringConfig {
    /// `(attribute name, measure)` pairs.
    pub attributes: Vec<(String, AttributeMeasure)>,
    /// Weighting rule.
    pub weighting: AttributeWeighting,
}

impl ScoringConfig {
    /// Creates a configuration comparing the given attributes with the given measures.
    pub fn new(
        attributes: impl IntoIterator<Item = (impl Into<String>, AttributeMeasure)>,
        weighting: AttributeWeighting,
    ) -> Self {
        Self { attributes: attributes.into_iter().map(|(n, m)| (n.into(), m)).collect(), weighting }
    }
}

/// A configured attribute with its resolved weight.
#[derive(Debug, Clone)]
struct WeightedAttribute {
    name: String,
    measure: AttributeMeasure,
    weight: f64,
}

/// Computes weighted pair similarities between records.
#[derive(Debug, Clone)]
pub struct PairScorer {
    attributes: Vec<WeightedAttribute>,
}

impl PairScorer {
    /// Builds a scorer from a configuration and the datasets being matched.
    ///
    /// The datasets are only consulted when [`AttributeWeighting::DistinctValues`]
    /// is selected, to count distinct values per attribute.
    pub fn new(config: &ScoringConfig, datasets: &[&Dataset]) -> Result<Self> {
        if config.attributes.is_empty() {
            return Err(ErError::InvalidArgument(
                "scoring configuration must name at least one attribute".to_string(),
            ));
        }
        let mut attributes = Vec::with_capacity(config.attributes.len());
        for (name, measure) in &config.attributes {
            let weight = match config.weighting {
                AttributeWeighting::Uniform => 1.0,
                AttributeWeighting::DistinctValues => {
                    let count: usize = datasets.iter().map(|d| d.distinct_value_count(name)).sum();
                    // An attribute absent from every dataset still participates with a
                    // minimal weight so the scorer never divides by zero.
                    (count as f64).max(1.0)
                }
            };
            attributes.push(WeightedAttribute { name: name.clone(), measure: *measure, weight });
        }
        Ok(Self { attributes })
    }

    /// Builds a scorer with explicit per-attribute weights (bypassing the weighting rule).
    pub fn with_weights(
        attributes: impl IntoIterator<Item = (impl Into<String>, AttributeMeasure, f64)>,
    ) -> Result<Self> {
        let attributes: Vec<WeightedAttribute> = attributes
            .into_iter()
            .map(|(n, m, w)| WeightedAttribute { name: n.into(), measure: m, weight: w })
            .collect();
        if attributes.is_empty() {
            return Err(ErError::InvalidArgument(
                "scorer needs at least one attribute".to_string(),
            ));
        }
        if attributes.iter().any(|a| a.weight < 0.0 || !a.weight.is_finite()) {
            return Err(ErError::InvalidArgument(
                "attribute weights must be finite and non-negative".to_string(),
            ));
        }
        Ok(Self { attributes })
    }

    /// The attribute names this scorer compares, with their weights.
    pub fn weights(&self) -> Vec<(&str, f64)> {
        self.attributes.iter().map(|a| (a.name.as_str(), a.weight)).collect()
    }

    /// Per-attribute similarity scores for a record pair (`None` where either side
    /// is missing or of the wrong type). Useful as a feature vector for classifiers.
    pub fn attribute_scores(&self, a: &Record, b: &Record) -> Vec<Option<f64>> {
        self.attributes
            .iter()
            .map(|attr| attr.measure.eval(a.get(&attr.name), b.get(&attr.name)))
            .collect()
    }

    /// Weighted aggregate similarity of a record pair in `[0, 1]`.
    ///
    /// Attributes missing on either side are excluded and the remaining weights are
    /// renormalized; if every attribute is missing the pair scores `0`.
    pub fn score(&self, a: &Record, b: &Record) -> f64 {
        let mut weighted_sum = 0.0;
        let mut weight_total = 0.0;
        for attr in &self.attributes {
            if let Some(sim) = attr.measure.eval(a.get(&attr.name), b.get(&attr.name)) {
                weighted_sum += attr.weight * sim;
                weight_total += attr.weight;
            }
        }
        if weight_total == 0.0 {
            0.0
        } else {
            (weighted_sum / weight_total).clamp(0.0, 1.0)
        }
    }

    /// Weighted aggregate similarity, reusing memoized token sequences from a
    /// [`TokenCache`] for the token-based string measures (Jaccard, Dice,
    /// overlap, TF-cosine). `a` is looked up on the cache's left side and `b`
    /// on its right side.
    ///
    /// Bit-identical to [`PairScorer::score`]: cached sequences are the exact
    /// `Tokenizer::tokenize` output and feed the same similarity functions, and
    /// anything the cache does not cover (missed records, character-based or
    /// numeric measures) falls back to direct evaluation.
    pub fn score_with_cache(&self, a: &Record, b: &Record, cache: &TokenCache) -> f64 {
        let mut weighted_sum = 0.0;
        let mut weight_total = 0.0;
        for attr in &self.attributes {
            if let Some(sim) = Self::eval_with_cache(attr, a, b, cache) {
                weighted_sum += attr.weight * sim;
                weight_total += attr.weight;
            }
        }
        if weight_total == 0.0 {
            0.0
        } else {
            (weighted_sum / weight_total).clamp(0.0, 1.0)
        }
    }

    fn eval_with_cache(
        attr: &WeightedAttribute,
        a: &Record,
        b: &Record,
        cache: &TokenCache,
    ) -> Option<f64> {
        if let AttributeMeasure::Text(measure) = attr.measure {
            if let Some(tokenizer) = token_based_tokenizer(measure) {
                // Text presence mirrors `AttributeMeasure::eval` exactly.
                let ta = a.get(&attr.name).as_text()?;
                let tb = b.get(&attr.name).as_text()?;
                let fresh_a;
                let tokens_a: &[String] = match cache.left_tokens(&attr.name, tokenizer, a.id()) {
                    Some(tokens) => tokens,
                    None => {
                        fresh_a = tokenizer.tokenize(ta);
                        &fresh_a
                    }
                };
                let fresh_b;
                let tokens_b: &[String] = match cache.right_tokens(&attr.name, tokenizer, b.id()) {
                    Some(tokens) => tokens,
                    None => {
                        fresh_b = tokenizer.tokenize(tb);
                        &fresh_b
                    }
                };
                return Some(eval_token_measure(measure, tokens_a, tokens_b));
            }
        }
        attr.measure.eval(a.get(&attr.name), b.get(&attr.name))
    }
}

/// The tokenizer of a token-based string measure, `None` for character-based ones.
fn token_based_tokenizer(measure: StringMeasure) -> Option<Tokenizer> {
    match measure {
        StringMeasure::Jaccard(t)
        | StringMeasure::Dice(t)
        | StringMeasure::Overlap(t)
        | StringMeasure::Cosine(t) => Some(t),
        _ => None,
    }
}

/// Evaluates a token-based measure on pre-tokenized sequences — the same
/// similarity functions `StringMeasure::eval` calls after tokenizing.
fn eval_token_measure(measure: StringMeasure, a: &[String], b: &[String]) -> f64 {
    match measure {
        StringMeasure::Jaccard(_) => jaccard_similarity(a, b),
        StringMeasure::Dice(_) => dice_similarity(a, b),
        StringMeasure::Overlap(_) => overlap_coefficient(a, b),
        StringMeasure::Cosine(_) => tf_cosine_similarity(a, b),
        _ => unreachable!("eval_token_measure is only called for token-based measures"),
    }
}

/// A memo of per-record token sequences, shared by blocking and scoring so
/// repeated passes over the same records stop re-normalizing and re-tokenizing
/// their attribute texts.
///
/// Sequences are keyed by `(attribute, tokenizer, side, record id)` and hold
/// the raw `Tokenizer::tokenize` output (duplicates included), so consumers
/// observe exactly what a fresh tokenization would produce. Left and right
/// sides are kept apart because the two datasets' record ids may collide. The
/// cache trusts that an admitted record's text does not change afterwards —
/// the resolution engine admits each record once, at ingest.
#[derive(Debug, Default, Clone)]
pub struct TokenCache {
    entries: Vec<TokenCacheEntry>,
}

#[derive(Debug, Clone)]
struct TokenCacheEntry {
    attribute: String,
    tokenizer: Tokenizer,
    /// Token sequences by record id, index 0 = left side, 1 = right side.
    sides: [HashMap<u64, Vec<String>>; 2],
}

impl TokenCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn admit(&mut self, attribute: &str, tokenizer: Tokenizer, side: usize, records: &[Record]) {
        let entry = match self
            .entries
            .iter()
            .position(|e| e.attribute == attribute && e.tokenizer == tokenizer)
        {
            Some(i) => &mut self.entries[i],
            None => {
                self.entries.push(TokenCacheEntry {
                    attribute: attribute.to_string(),
                    tokenizer,
                    sides: [HashMap::new(), HashMap::new()],
                });
                self.entries.last_mut().expect("entry just pushed")
            }
        };
        for record in records {
            if let Some(text) = record.text(attribute) {
                entry.sides[side].entry(record.id().0).or_insert_with(|| tokenizer.tokenize(text));
            }
        }
    }

    /// Tokenizes and memoizes a batch of left-side records for an attribute.
    pub fn admit_left(&mut self, attribute: &str, tokenizer: Tokenizer, records: &[Record]) {
        self.admit(attribute, tokenizer, 0, records);
    }

    /// Tokenizes and memoizes a batch of right-side records for an attribute.
    pub fn admit_right(&mut self, attribute: &str, tokenizer: Tokenizer, records: &[Record]) {
        self.admit(attribute, tokenizer, 1, records);
    }

    /// Admits left- and right-side batches for every *token-based* text
    /// attribute of a scoring configuration (character-based and numeric
    /// measures gain nothing from token memoization and are skipped), so
    /// [`PairScorer::score_with_cache`] finds every sequence it can use.
    pub fn admit_scoring(
        &mut self,
        config: &ScoringConfig,
        left_records: &[Record],
        right_records: &[Record],
    ) {
        for (name, measure) in &config.attributes {
            let AttributeMeasure::Text(measure) = measure else { continue };
            let Some(tokenizer) = token_based_tokenizer(*measure) else { continue };
            self.admit(name, tokenizer, 0, left_records);
            self.admit(name, tokenizer, 1, right_records);
        }
    }

    fn tokens(
        &self,
        attribute: &str,
        tokenizer: Tokenizer,
        side: usize,
        id: RecordId,
    ) -> Option<&[String]> {
        self.entries
            .iter()
            .find(|e| e.attribute == attribute && e.tokenizer == tokenizer)
            .and_then(|e| e.sides[side].get(&id.0))
            .map(Vec::as_slice)
    }

    /// The memoized token sequence of a left-side record, if admitted.
    pub fn left_tokens(
        &self,
        attribute: &str,
        tokenizer: Tokenizer,
        id: RecordId,
    ) -> Option<&[String]> {
        self.tokens(attribute, tokenizer, 0, id)
    }

    /// The memoized token sequence of a right-side record, if admitted.
    pub fn right_tokens(
        &self,
        attribute: &str,
        tokenizer: Tokenizer,
        id: RecordId,
    ) -> Option<&[String]> {
        self.tokens(attribute, tokenizer, 1, id)
    }

    /// Total number of memoized record token sequences across all entries.
    pub fn cached_records(&self) -> usize {
        self.entries.iter().map(|e| e.sides[0].len() + e.sides[1].len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, RecordId, Schema};
    use crate::text::Tokenizer;

    fn paper_record(id: u64, title: &str, venue: &str) -> Record {
        Record::new(RecordId(id)).with("title", title).with("venue", venue)
    }

    fn bib_dataset(records: Vec<Record>) -> Dataset {
        let mut ds = Dataset::new("test", Schema::new(["title", "venue", "year"]));
        for r in records {
            ds.push(r).unwrap();
        }
        ds
    }

    fn title_venue_config() -> ScoringConfig {
        ScoringConfig::new(
            [
                ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
                ("venue", AttributeMeasure::Text(StringMeasure::JaroWinkler)),
            ],
            AttributeWeighting::DistinctValues,
        )
    }

    #[test]
    fn identical_records_score_one() {
        let ds = bib_dataset(vec![
            paper_record(1, "entity resolution", "icde"),
            paper_record(2, "record linkage", "vldb"),
        ]);
        let scorer = PairScorer::new(&title_venue_config(), &[&ds]).unwrap();
        let a = paper_record(10, "entity resolution", "icde");
        assert!((scorer.score(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unrelated_records_score_low() {
        let ds = bib_dataset(vec![paper_record(1, "entity resolution", "icde")]);
        let scorer = PairScorer::new(&title_venue_config(), &[&ds]).unwrap();
        let a = paper_record(10, "entity resolution with quality guarantees", "icde");
        let b = paper_record(11, "deep convolutional networks", "nips");
        assert!(scorer.score(&a, &b) < 0.5);
        assert!(scorer.score(&a, &b) >= 0.0);
    }

    #[test]
    fn missing_attributes_renormalize_weights() {
        let ds = bib_dataset(vec![paper_record(1, "entity resolution", "icde")]);
        let scorer = PairScorer::new(&title_venue_config(), &[&ds]).unwrap();
        let full = paper_record(10, "entity resolution", "icde");
        let missing_venue = Record::new(RecordId(11)).with("title", "entity resolution");
        // Only the title attribute participates, and the titles are identical.
        assert!((scorer.score(&full, &missing_venue) - 1.0).abs() < 1e-12);
        // A record with no comparable attributes scores 0.
        let empty = Record::new(RecordId(12));
        assert_eq!(scorer.score(&full, &empty), 0.0);
    }

    #[test]
    fn distinct_value_weighting_prefers_discriminative_attributes() {
        // Titles are all distinct; venue has a single value, so title carries more weight.
        let ds = bib_dataset(vec![
            paper_record(1, "paper one", "icde"),
            paper_record(2, "paper two", "icde"),
            paper_record(3, "paper three", "icde"),
        ]);
        let scorer = PairScorer::new(&title_venue_config(), &[&ds]).unwrap();
        let weights = scorer.weights();
        let title_weight = weights.iter().find(|(n, _)| *n == "title").unwrap().1;
        let venue_weight = weights.iter().find(|(n, _)| *n == "venue").unwrap().1;
        assert!(title_weight > venue_weight);

        // Same titles, different venue: should still score high because venue weighs little.
        let a = paper_record(10, "matching paper", "icde");
        let b = paper_record(11, "matching paper", "sigmod");
        assert!(scorer.score(&a, &b) > 0.7);
    }

    #[test]
    fn numeric_attribute_measures() {
        let scorer = PairScorer::with_weights([
            ("year", AttributeMeasure::NumberAbsolute { tolerance: 10.0 }, 1.0),
            ("price", AttributeMeasure::NumberRelative, 1.0),
        ])
        .unwrap();
        let a = Record::new(RecordId(1)).with("year", 2000.0).with("price", 100.0);
        let b = Record::new(RecordId(2)).with("year", 2005.0).with("price", 50.0);
        // year: 1 - 5/10 = 0.5; price: 1 - 50/100 = 0.5 → aggregate 0.5.
        assert!((scorer.score(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn attribute_scores_expose_feature_vector() {
        let scorer = PairScorer::with_weights([
            ("title", AttributeMeasure::Text(StringMeasure::Levenshtein), 1.0),
            ("year", AttributeMeasure::NumberAbsolute { tolerance: 5.0 }, 1.0),
        ])
        .unwrap();
        let a = Record::new(RecordId(1)).with("title", "abc").with("year", 2000.0);
        let b = Record::new(RecordId(2)).with("title", "abc");
        let scores = scorer.attribute_scores(&a, &b);
        assert_eq!(scores.len(), 2);
        assert!((scores[0].unwrap() - 1.0).abs() < 1e-12);
        assert!(scores[1].is_none());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let ds = bib_dataset(vec![]);
        let empty = ScoringConfig::new(
            Vec::<(String, AttributeMeasure)>::new(),
            AttributeWeighting::Uniform,
        );
        assert!(PairScorer::new(&empty, &[&ds]).is_err());
        assert!(PairScorer::with_weights([(
            "title",
            AttributeMeasure::Text(StringMeasure::Jaro),
            -1.0
        )])
        .is_err());
    }

    #[test]
    fn cached_scores_are_bit_identical() {
        // Mixed measures: token-based (Jaccard/Cosine go through the cache),
        // character-based (JaroWinkler) and numeric (absolute) fall back.
        let scorer = PairScorer::with_weights([
            ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words)), 3.0),
            ("authors", AttributeMeasure::Text(StringMeasure::Cosine(Tokenizer::QGrams(2))), 2.0),
            ("venue", AttributeMeasure::Text(StringMeasure::JaroWinkler), 1.0),
            ("year", AttributeMeasure::NumberAbsolute { tolerance: 5.0 }, 1.0),
        ])
        .unwrap();
        let lefts = vec![
            Record::new(RecordId(1))
                .with("title", "Entity Resolution, a Survey")
                .with("authors", "getoor machanavajjhala")
                .with("venue", "vldb")
                .with("year", 2012.0),
            Record::new(RecordId(2)).with("title", "graph networks"),
        ];
        let rights = vec![
            Record::new(RecordId(1)) // same id as a left record: sides must not mix
                .with("title", "a survey of entity resolution")
                .with("authors", "machanavajjhala")
                .with("venue", "pvldb")
                .with("year", 2011.0),
            Record::new(RecordId(9)).with("venue", "icde"),
        ];
        let mut cache = TokenCache::new();
        for (attr, tok) in [("title", Tokenizer::Words), ("authors", Tokenizer::QGrams(2))] {
            cache.admit_left(attr, tok, &lefts);
            cache.admit_right(attr, tok, &rights);
        }
        assert!(cache.cached_records() > 0);
        for a in &lefts {
            for b in &rights {
                let plain = scorer.score(a, b);
                let cached = scorer.score_with_cache(a, b, &cache);
                assert_eq!(plain.to_bits(), cached.to_bits(), "{:?} vs {:?}", a.id(), b.id());
            }
        }
        // An empty cache degrades to plain scoring for every pair.
        let empty = TokenCache::new();
        for a in &lefts {
            for b in &rights {
                assert_eq!(
                    scorer.score(a, b).to_bits(),
                    scorer.score_with_cache(a, b, &empty).to_bits()
                );
            }
        }
    }
}
