//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so this shim provides the subset of the criterion API the
//! workspace's benches use — `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `sample_size`, `throughput`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs a short warm-up, then
//! measures `sample_size` timed samples and reports the median per-iteration
//! time (plus throughput when configured) on stdout. That is deliberately
//! lightweight: it keeps the 5 bench targets compiling, runnable and useful
//! for coarse comparisons without any registry dependency. Passing `--test`
//! to a bench binary (e.g. `cargo bench -- --test`) runs every benchmark body
//! exactly once. Note the workspace sets `test = false` on its bench targets,
//! so plain `cargo test` skips them — the heavier benches would dominate the
//! suite's runtime in the unoptimized test profile.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: a function name plus a
/// parameter rendered into the reported label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id labelled `{function_name}/{parameter}`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { label: name.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { label: name }
    }
}

/// Units processed per iteration, used to derive a rate in the report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Entry point handed to each benchmark function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label, |bencher| routine(bencher));
        self
    }

    /// Benchmarks a closure over a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.label, |bencher| routine(bencher, input));
        self
    }

    /// Finishes the group. (All reporting happens eagerly; this exists for
    /// API compatibility.)
    pub fn finish(self) {}

    fn run(&mut self, label: &str, mut routine: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: if self.criterion.test_mode { 1 } else { self.sample_size },
            test_mode: self.criterion.test_mode,
            median: Duration::ZERO,
        };
        routine(&mut bencher);
        let full_label = format!("{}/{}", self.name, label);
        if self.criterion.test_mode {
            println!("test {full_label} ... ok (ran once)");
            return;
        }
        let per_iter = bencher.median.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:.3e} elem/s", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:.3e} B/s", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!("{full_label:<48} {}{rate}", format_duration(bencher.median));
    }
}

/// Timer handed to each benchmark routine.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    median: Duration,
}

impl Bencher {
    /// Times the closure, recording the median of the configured number of
    /// samples. The closure's output is passed through [`black_box`] so the
    /// optimizer cannot elide the benchmarked work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: one untimed run.
        black_box(routine());
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            samples.push(start.elapsed());
        }
        samples.sort_unstable();
        self.median = samples[samples.len() / 2];
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns/iter")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs/iter", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms/iter", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s/iter", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a single runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_runs() {
        let mut criterion = Criterion { test_mode: true };
        let mut group = criterion.benchmark_group("unit");
        let mut runs = 0usize;
        group.sample_size(5).bench_function("counter", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 1);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut criterion = Criterion { test_mode: false };
        let mut group = criterion.benchmark_group("unit");
        group.sample_size(3);
        group.throughput(Throughput::Elements(4));
        let data = vec![1u64, 2, 3, 4];
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats_parameter() {
        let id = BenchmarkId::new("BASE", 10_000);
        assert_eq!(id.label, "BASE/10000");
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert!(format_duration(Duration::from_nanos(500)).ends_with("ns/iter"));
        assert!(format_duration(Duration::from_micros(50)).ends_with("µs/iter"));
        assert!(format_duration(Duration::from_millis(50)).ends_with("ms/iter"));
        assert!(format_duration(Duration::from_secs(5)).ends_with("s/iter"));
    }
}
