//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so this shim implements the subset of proptest the workspace's
//! property tests rely on:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`) turning
//!   `fn name(arg in strategy, ..) { body }` items into `#[test]` functions
//!   that run the body over many generated inputs;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`];
//! * [`Strategy`] implementations for integer/float ranges and for string
//!   regex literals of the shapes used here (`"[a-d ]{0,20}"`, `"\\PC{0,15}"`).
//!
//! Differences from the real crate: failing cases are reported but **not
//! shrunk**, and generation is deterministic per test (seeded from the test's
//! module path) so CI runs are reproducible. The number of cases defaults to
//! 64 and can be overridden with the `PROPTEST_CASES` environment variable or
//! `ProptestConfig { cases, .. }`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Runtime configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each property must pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections before the test aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases, max_global_rejects: 4096 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed an assertion; the property is falsified.
    Fail(String),
    /// The case was rejected by `prop_assume!`; another case is drawn.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection (filtered input) with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Deterministic generator used to produce test inputs (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `name`, so a
    /// given property test sees the same inputs on every run.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test's full path.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of generated values for one property argument.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let sample = self.start + rng.unit_f64() * (self.end - self.start);
        if sample >= self.end {
            self.start
        } else {
            sample
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        (start + rng.unit_f64() * (end - start)).clamp(start, end)
    }
}

/// String strategies are written as regex literals. Only the shapes used in
/// this workspace are supported: a sequence of atoms, where an atom is a
/// character class `[...]` (literal characters and `a-z` ranges), the escape
/// `\PC` (any printable character), or a literal character; each atom may
/// carry a `{n}` or `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex_subset(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = if atom.min == atom.max {
                atom.min
            } else {
                atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
            };
            for _ in 0..count {
                let idx = rng.below(atom.pool.len() as u64) as usize;
                out.push(atom.pool[idx]);
            }
        }
        out
    }
}

struct RegexAtom {
    pool: Vec<char>,
    min: usize,
    max: usize,
}

/// Printable pool for `\PC`: full ASCII printable range plus a few multi-byte
/// scalars so char-based algorithms see non-ASCII input.
fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..0x7F).map(char::from).collect();
    pool.extend(['é', 'ß', 'λ', 'Ω', '中', '文', '🦀']);
    pool
}

fn parse_regex_subset(pattern: &str) -> Vec<RegexAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let pool = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated class in regex {pattern:?}"))
                    + i;
                let mut pool = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in regex {pattern:?}");
                        pool.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        pool.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                pool
            }
            '\\' => {
                assert!(
                    i + 2 < chars.len() && chars[i + 1] == 'P' && chars[i + 2] == 'C',
                    "unsupported escape in regex {pattern:?}; this shim only knows \\PC"
                );
                i += 3;
                printable_pool()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        assert!(!pool.is_empty(), "empty character class in regex {pattern:?}");
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repetition in regex {pattern:?}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in regex {pattern:?}");
        atoms.push(RegexAtom { pool, min, max });
    }
    atoms
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let case = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(why)) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "proptest: too many prop_assume! rejections ({rejected}); last: {why}"
                        );
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest case failed after {passed} passing case(s)\n\
                             input: {case}\n{message}"
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{parse_regex_subset, TestRng};

    #[test]
    fn regex_class_with_repetition() {
        let mut rng = TestRng::deterministic("regex_class");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c ]{0,5}", &mut rng);
            assert!(s.len() <= 5);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ')));
        }
    }

    #[test]
    fn regex_printable_escape() {
        let mut rng = TestRng::deterministic("regex_pc");
        for _ in 0..200 {
            let s = Strategy::generate(&"\\PC{0,15}", &mut rng);
            assert!(s.chars().count() <= 15);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn regex_exact_count_and_literal() {
        let atoms = parse_regex_subset("x[ab]{3}");
        assert_eq!(atoms.len(), 2);
        let mut rng = TestRng::deterministic("regex_exact");
        let s = Strategy::generate(&"x[ab]{3}", &mut rng);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('x'));
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in -1.0..1.0f64, k in 0u64..=5) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!(k <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
        #[test]
        fn assume_filters_cases(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }
}
