//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so this shim provides the exact subset of the `rand` API the
//! workspace uses:
//!
//! * the [`Rng`] extension trait with `gen_range` over integer and float
//!   ranges (half-open and inclusive);
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`], a deterministic 64-bit PRNG (xoshiro256++ seeded via
//!   SplitMix64);
//! * [`seq::SliceRandom::shuffle`] (Fisher-Yates).
//!
//! The generator is of high statistical quality (xoshiro256++ passes BigCrush)
//! and fully deterministic for a given seed, which is all the workspace needs:
//! every consumer seeds explicitly via `StdRng::seed_from_u64`. Replace the
//! `rand` entry in the workspace `Cargo.toml` with a registry version to use
//! the real crate; no call sites need to change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of uniformly distributed 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension trait with the value-level sampling helpers used by the
/// workspace. Blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value from the given range.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample a uniform value of type `T` from itself.
///
/// Implemented via a single blanket impl per range shape (mirroring the real
/// `rand` crate) so type inference can flow from the use site into untyped
/// range literals, e.g. `b'a' + rng.gen_range(0..26)` sampling a `u8`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)` or `[low, high]` depending on
    /// `inclusive`. The range must be non-empty.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range called with empty range");
        T::sample_between(rng, start, end, true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                let offset = uniform_u128_below(rng, span);
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` using rejection sampling to avoid modulo bias.
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // All spans produced by the integer impls fit in 65 bits; two words cover
    // the full width. The zone rejection keeps the draw exactly uniform.
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide <= zone {
            return wide % span;
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        if inclusive {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
            (low + unit * (high - low)).clamp(low, high)
        } else {
            let sample = low + unit_f64(rng) * (high - low);
            // Guard against floating-point rounding landing exactly on `high`.
            if sample >= high {
                low
            } else {
                sample
            }
        }
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        f64::sample_between(rng, f64::from(low), f64::from(high), inclusive) as f32
    }
}

/// A PRNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it into the full
    /// internal state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    ///
    /// Unlike the real `rand::rngs::StdRng` (ChaCha-based), this generator is
    /// not cryptographically secure — the workspace only uses it for
    /// reproducible simulation and sampling.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait providing random operations on slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn float_range_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(17);
        let total: f64 = (0..100_000).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = total / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left the slice sorted");
    }
}
