//! The hybrid optimizer — the paper's "HYBR" (Section VII).
//!
//! The baseline bounds (monotonicity) and the sampling bounds (GP posterior) each
//! have regimes where they are the tighter one: BASE wins when the match
//! proportion curve is flat near the boundaries (sampling margins stay wide),
//! SAMP wins when it is steep (the monotonicity bound is far too conservative).
//! HYBR therefore:
//!
//! 1. runs the SAMP estimation phase and takes its solution `S0 = [D_i, D_j]` as a
//!    fallback that is already certified at confidence θ;
//! 2. restarts the human region from the single median subset of `S0` and grows it
//!    outwards like BASE, but at every step certifies precision/recall using the
//!    **better** of the baseline estimate and the GP estimate;
//! 3. never grows beyond `S0`, so the result costs at most as much as SAMP's.

use crate::optimizer::Optimizer;
use crate::oracle::Oracle;
use crate::requirement::QualityRequirement;
use crate::sampling::{
    censored_proportion_lower, censored_proportion_upper, MatchCountEstimator,
    PartialSamplingConfig, PartialSamplingOptimizer,
};
use crate::session::{
    verified_assignment, CoreOutput, Drive, LabelSlate, LabelingSession, ReplayCache,
    SessionConfig, SessionPhase,
};
use crate::solution::{HumoSolution, OptimizationOutcome};
use crate::{HumoError, Result};
use er_core::workload::{SubsetPartition, Workload};

/// Configuration of the HYBR optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridConfig {
    /// Configuration of the embedded SAMP estimation phase.
    pub sampling: PartialSamplingConfig,
    /// Number of consecutive subsets averaged for the baseline-style boundary
    /// estimates (the paper recommends 3–10).
    pub estimation_units: usize,
}

impl HybridConfig {
    /// Creates a configuration with the paper's defaults.
    pub fn new(requirement: QualityRequirement) -> Self {
        Self { sampling: PartialSamplingConfig::new(requirement), estimation_units: 5 }
    }

    /// Returns a copy with a different seed (used to average over runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sampling.seed = seed;
        self
    }

    /// The quality requirement being enforced.
    pub fn requirement(&self) -> &QualityRequirement {
        &self.sampling.requirement
    }

    fn validate(&self) -> Result<()> {
        if self.estimation_units == 0 {
            return Err(HumoError::InvalidConfig(
                "estimation window must cover at least one subset".to_string(),
            ));
        }
        Ok(())
    }
}

/// The HYBR optimizer.
#[derive(Debug, Clone)]
pub struct HybridOptimizer {
    config: HybridConfig,
    sampler: PartialSamplingOptimizer,
}

impl HybridOptimizer {
    /// Creates a HYBR optimizer, validating the configuration.
    pub fn new(config: HybridConfig) -> Result<Self> {
        config.validate()?;
        let sampler = PartialSamplingOptimizer::new(config.sampling)?;
        Ok(Self { config, sampler })
    }

    /// The configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    /// Starts a sans-I/O [`LabelingSession`] for this optimizer over the
    /// workload — the batched, resumable alternative to
    /// [`Optimizer::optimize`].
    pub fn session<'w>(&self, workload: &'w Workload) -> Result<LabelingSession<'w>> {
        LabelingSession::new(SessionConfig::Hybrid(self.config), workload)
    }
}

/// Mutable state of the HYBR refinement loop. The human region spans the subsets
/// `[lower_subset, upper_subset)` of the partition; all of its pairs have been
/// labeled through the oracle.
struct RefineState<'a> {
    partition: &'a SubsetPartition,
    labels: Vec<Option<bool>>,
    lower_subset: usize,
    upper_subset: usize,
    matches_in_dh: usize,
}

impl<'a> RefineState<'a> {
    fn new(workload: &Workload, partition: &'a SubsetPartition, start_subset: usize) -> Self {
        Self {
            partition,
            labels: vec![None; workload.len()],
            lower_subset: start_subset,
            upper_subset: start_subset,
            matches_in_dh: 0,
        }
    }

    fn dh_subsets(&self) -> usize {
        self.upper_subset - self.lower_subset
    }

    /// Records the answered labels of a freshly joined subset, updating the
    /// in-DH match counter. The subset must have been `require`d already.
    fn record_subset(&mut self, subset: usize, slate: &LabelSlate<'_>) {
        for idx in self.partition.subset(subset).range() {
            if self.labels[idx].is_none() {
                self.labels[idx] = Some(slate.is_match(idx));
            }
            if self.labels[idx] == Some(true) {
                self.matches_in_dh += 1;
            }
        }
    }

    fn observed_matches(&self, subsets: std::ops::Range<usize>) -> usize {
        if subsets.is_empty() {
            return 0;
        }
        let range = self.partition.range_of(subsets.start, subsets.end - 1);
        range.filter(|&i| self.labels[i] == Some(true)).count()
    }

    fn pairs_in(&self, subsets: std::ops::Range<usize>) -> usize {
        if subsets.is_empty() {
            return 0;
        }
        self.partition.range_of(subsets.start, subsets.end - 1).len()
    }

    /// Labeled pair and match counts of the `window` DH subsets adjacent to
    /// `v⁺` — the census HYBR's monotonicity step extrapolates into `D⁺`.
    fn border_counts_upper(&self, window: usize) -> (usize, usize) {
        if self.dh_subsets() == 0 {
            return (0, 0);
        }
        let w = window.min(self.dh_subsets());
        let range = (self.upper_subset - w)..self.upper_subset;
        (self.pairs_in(range.clone()), self.observed_matches(range))
    }

    /// Labeled pair and match counts of the `window` DH subsets adjacent to
    /// `v⁻` — the census HYBR's monotonicity step extrapolates into `D⁻`.
    fn border_counts_lower(&self, window: usize) -> (usize, usize) {
        if self.dh_subsets() == 0 {
            return (0, 0);
        }
        let w = window.min(self.dh_subsets());
        let range = self.lower_subset..(self.lower_subset + w);
        (self.pairs_in(range.clone()), self.observed_matches(range))
    }
}

impl HybridOptimizer {
    /// Lower bound on the number of matches in `D⁺`, taking the better (larger) of
    /// the monotonicity-based and GP-based estimates.
    ///
    /// The monotonicity estimate extrapolates the labeled DH border census into
    /// `D⁺`; when the census is *saturated* (all or almost all matches) its
    /// observed proportion cannot distinguish `p = 1` from `p = 1 − 3/k`, so
    /// under `calibrate_lower` it is capped at the census's one-sided
    /// Clopper–Pearson lower limit — the same detection-limit treatment the
    /// [`crate::sampling::CalibratedEstimator`] applies to the GP term.
    fn plus_matches_lower_bound(
        &self,
        state: &RefineState<'_>,
        estimator: &dyn MatchCountEstimator,
        num_subsets: usize,
        confidence: f64,
    ) -> f64 {
        let d_plus = state.pairs_in(state.upper_subset..num_subsets) as f64;
        if d_plus == 0.0 {
            return 0.0;
        }
        let (pairs, matches) = state.border_counts_upper(self.config.estimation_units);
        let tail = &self.config.sampling.tail_calibration;
        let proportion = if tail.enabled && tail.calibrate_lower {
            censored_proportion_lower(pairs, matches, tail.quiet_fraction, confidence)
        } else if pairs == 0 {
            0.0
        } else {
            matches as f64 / pairs as f64
        };
        let base = d_plus * proportion;
        let samp = estimator.lower_bound(state.upper_subset..num_subsets, confidence);
        base.max(samp).min(d_plus)
    }

    /// Upper bound on the number of matches in `D⁻`, taking the better (smaller) of
    /// the monotonicity-based and GP-based estimates.
    ///
    /// The recall-side mirror of [`Self::plus_matches_lower_bound`]: a *quiet*
    /// border census (all or almost all non-matches, the common case on flat
    /// curves) cannot certify `p = 0`, so its proportion is floored at the
    /// census's one-sided Clopper–Pearson upper limit before extrapolation —
    /// otherwise `base = 0` would `min()` away the calibrated estimator's
    /// quiet-run detection-limit floor and re-expose recall under-coverage
    /// through the monotonicity term.
    fn minus_matches_upper_bound(
        &self,
        state: &RefineState<'_>,
        estimator: &dyn MatchCountEstimator,
        confidence: f64,
    ) -> f64 {
        let d_minus = state.pairs_in(0..state.lower_subset) as f64;
        if d_minus == 0.0 {
            return 0.0;
        }
        let (pairs, matches) = state.border_counts_lower(self.config.estimation_units);
        let tail = &self.config.sampling.tail_calibration;
        let proportion = if tail.enabled {
            censored_proportion_upper(pairs, matches, tail.quiet_fraction, confidence)
        } else if pairs == 0 {
            1.0
        } else {
            matches as f64 / pairs as f64
        };
        let base = d_minus * proportion;
        let samp = estimator.upper_bound(0..state.lower_subset, confidence);
        base.min(samp).max(0.0)
    }

    fn precision_satisfied(
        &self,
        state: &RefineState<'_>,
        estimator: &dyn MatchCountEstimator,
        num_subsets: usize,
        confidence: f64,
    ) -> bool {
        let alpha = self.config.requirement().precision();
        let d_plus = state.pairs_in(state.upper_subset..num_subsets) as f64;
        if d_plus == 0.0 {
            return true;
        }
        if state.dh_subsets() == 0 {
            return false;
        }
        let m_h = state.matches_in_dh as f64;
        let lb_plus = self.plus_matches_lower_bound(state, estimator, num_subsets, confidence);
        (m_h + lb_plus) / (m_h + d_plus) >= alpha
    }

    fn recall_satisfied(
        &self,
        state: &RefineState<'_>,
        estimator: &dyn MatchCountEstimator,
        num_subsets: usize,
        confidence: f64,
    ) -> bool {
        let beta = self.config.requirement().recall();
        let d_minus = state.pairs_in(0..state.lower_subset) as f64;
        if d_minus == 0.0 {
            return true;
        }
        if state.dh_subsets() == 0 {
            return false;
        }
        let m_h = state.matches_in_dh as f64;
        let lb_plus = self.plus_matches_lower_bound(state, estimator, num_subsets, confidence);
        let ub_minus = self.minus_matches_upper_bound(state, estimator, confidence);
        let found = m_h + lb_plus;
        if found + ub_minus == 0.0 {
            return true;
        }
        found / (found + ub_minus) >= beta
    }
}

impl HybridOptimizer {
    /// The suspendable HYBR run. Each refinement iteration joins its (up to
    /// two) subset extensions into a single label batch, so the number of
    /// label round-trips scales with the number of subsets the search visits —
    /// never with the raw pair count.
    pub(crate) fn session_core(
        &self,
        workload: &Workload,
        slate: &LabelSlate<'_>,
        cache: &mut ReplayCache,
    ) -> Drive<CoreOutput> {
        // Phase 1: SAMP estimation gives the certified fallback solution S0.
        let plan = self.sampler.plan_core(workload, slate, None, cache)?;
        let (s0_lo, s0_hi) = plan.subset_bounds;
        let num_subsets = plan.partition.len();
        if s0_hi <= s0_lo {
            // SAMP already proved that no human region is needed.
            let solution = plan.solution(workload);
            let assignment = verified_assignment(&solution, workload, slate)?;
            return Ok(CoreOutput { solution, assignment, warm_out: None });
        }

        // Phase 2: restart from the median subset of S0 and grow outwards using
        // the better of both estimates, never exceeding S0.
        let confidence = self.config.requirement().split_confidence();
        let start = s0_lo + (s0_hi - s0_lo) / 2;
        let mut state = RefineState::new(workload, &plan.partition, start);
        slate.require(SessionPhase::BoundarySearch, plan.partition.subset(start).range())?;
        state.record_subset(start, slate);
        state.upper_subset = start + 1;

        loop {
            let precision_ok =
                self.precision_satisfied(&state, &plan.estimator, num_subsets, confidence);
            let recall_ok = self.recall_satisfied(&state, &plan.estimator, num_subsets, confidence);
            if precision_ok && recall_ok {
                break;
            }
            let upper_move =
                (!precision_ok && state.upper_subset < s0_hi).then_some(state.upper_subset);
            let lower_move =
                (!recall_ok && state.lower_subset > s0_lo).then(|| state.lower_subset - 1);
            if upper_move.is_none() && lower_move.is_none() {
                // Both boundaries have hit S0's edges: fall back to S0, which the
                // sampling phase already certified.
                break;
            }
            slate.require(
                SessionPhase::BoundarySearch,
                upper_move
                    .into_iter()
                    .chain(lower_move)
                    .flat_map(|subset| plan.partition.subset(subset).range()),
            )?;
            if let Some(subset) = upper_move {
                state.record_subset(subset, slate);
                state.upper_subset += 1;
            }
            if let Some(subset) = lower_move {
                state.record_subset(subset, slate);
                state.lower_subset -= 1;
            }
        }

        let lower_index = plan.partition.subset(state.lower_subset).range().start;
        let upper_index = if state.upper_subset == 0 {
            lower_index
        } else {
            plan.partition.subset(state.upper_subset - 1).range().end
        };
        let solution = HumoSolution::new(lower_index, upper_index, workload.len());
        let assignment = verified_assignment(&solution, workload, slate)?;
        Ok(CoreOutput { solution, assignment, warm_out: None })
    }
}

impl Optimizer for HybridOptimizer {
    fn optimize(
        &self,
        workload: &Workload,
        oracle: &mut dyn Oracle,
    ) -> Result<OptimizationOutcome> {
        self.session(workload)?.drive(oracle)
    }

    fn name(&self) -> &'static str {
        "HYBR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use crate::sampling::PartialSamplingOptimizer;
    use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};

    fn workload(n: usize, tau: f64, sigma: f64, seed: u64) -> Workload {
        SyntheticGenerator::new(SyntheticConfig {
            num_pairs: n,
            tau,
            sigma,
            subset_size: 200,
            seed,
        })
        .generate()
    }

    fn run_hybrid(w: &Workload, level: f64, seed: u64) -> OptimizationOutcome {
        let requirement = QualityRequirement::symmetric(level).unwrap();
        let optimizer =
            HybridOptimizer::new(HybridConfig::new(requirement).with_seed(seed)).unwrap();
        let mut oracle = GroundTruthOracle::new();
        optimizer.optimize(w, &mut oracle).unwrap()
    }

    fn run_samp(w: &Workload, level: f64, seed: u64) -> OptimizationOutcome {
        let requirement = QualityRequirement::symmetric(level).unwrap();
        let optimizer =
            PartialSamplingOptimizer::new(PartialSamplingConfig::new(requirement).with_seed(seed))
                .unwrap();
        let mut oracle = GroundTruthOracle::new();
        optimizer.optimize(w, &mut oracle).unwrap()
    }

    #[test]
    fn meets_the_requirement_with_high_success_rate() {
        let w = workload(40_000, 14.0, 0.1, 29);
        let runs = 10;
        let mut successes = 0;
        for seed in 0..runs {
            let outcome = run_hybrid(&w, 0.9, seed);
            if outcome.metrics.precision() >= 0.9 && outcome.metrics.recall() >= 0.9 {
                successes += 1;
            }
        }
        assert!(successes >= runs - 1, "HYBR met the requirement only {successes}/{runs} times");
    }

    #[test]
    fn never_costs_more_than_samp_with_the_same_seed() {
        let w = workload(40_000, 14.0, 0.1, 31);
        for seed in 0..5 {
            let hybr = run_hybrid(&w, 0.9, seed);
            let samp = run_samp(&w, 0.9, seed);
            assert!(
                hybr.total_human_cost <= samp.total_human_cost,
                "seed {seed}: HYBR cost {} exceeds SAMP cost {}",
                hybr.total_human_cost,
                samp.total_human_cost
            );
        }
    }

    #[test]
    fn handles_flat_and_steep_curves() {
        // Flat curve (τ = 8, harder) and steep curve (τ = 18, easier). Like the
        // other quality checks, this is asserted over several seeds because the
        // guarantee is probabilistic (confidence θ = 0.9): the nominal failure
        // rate is 1 − θ = 10%, so over 10 runs at most 3 *recall* failures are
        // tolerated (the one-sided 95% binomial acceptance band around a 10%
        // rate). Before the tail-calibrated estimator the flat curve failed
        // recall in roughly half the runs, and before the pooled lower-bound
        // calibration the precision side missed in 20–45% of mid-steep runs;
        // with both sides calibrated the *total* failure rate is nominal too,
        // so it gets the same 10% band with one extra failure of slack for the
        // two-sided conjunction.
        let flat = workload(30_000, 8.0, 0.1, 37);
        let steep = workload(30_000, 18.0, 0.1, 37);
        let runs = 10u64;
        let max_recall_failures = 3usize; // P(X >= 4 | n = 10, p = 0.1) ≈ 1.3%
        let max_total_failures = 4usize; // P(X >= 5 | n = 10, p = 0.1) ≈ 0.15%
        let mut flat_recall_failures = 0usize;
        let mut steep_recall_failures = 0usize;
        let mut flat_failures = 0usize;
        let mut steep_failures = 0usize;
        let mut flat_cost = 0usize;
        let mut steep_cost = 0usize;
        for seed in 0..runs {
            let flat_outcome = run_hybrid(&flat, 0.9, seed);
            let steep_outcome = run_hybrid(&steep, 0.9, seed);
            if flat_outcome.metrics.recall() < 0.9 {
                flat_recall_failures += 1;
            }
            if steep_outcome.metrics.recall() < 0.9 {
                steep_recall_failures += 1;
            }
            if flat_outcome.metrics.precision() < 0.9 || flat_outcome.metrics.recall() < 0.9 {
                flat_failures += 1;
            }
            if steep_outcome.metrics.precision() < 0.9 || steep_outcome.metrics.recall() < 0.9 {
                steep_failures += 1;
            }
            flat_cost += flat_outcome.total_human_cost;
            steep_cost += steep_outcome.total_human_cost;
        }
        assert!(
            flat_recall_failures <= max_recall_failures,
            "flat curve missed recall {flat_recall_failures}/{runs} times \
             (nominal rate 10% + binomial slack allows {max_recall_failures})"
        );
        assert!(
            steep_recall_failures <= max_recall_failures,
            "steep curve missed recall {steep_recall_failures}/{runs} times \
             (nominal rate 10% + binomial slack allows {max_recall_failures})"
        );
        assert!(
            flat_failures <= max_total_failures,
            "flat curve missed the full requirement {flat_failures}/{runs} times \
             (nominal 10% + binomial band allows {max_total_failures})"
        );
        assert!(
            steep_failures <= max_total_failures,
            "steep curve missed the full requirement {steep_failures}/{runs} times \
             (nominal 10% + binomial band allows {max_total_failures})"
        );
        assert!(
            steep_cost < flat_cost,
            "steep workload should need less human work ({steep_cost} vs {flat_cost} total)"
        );
    }

    #[test]
    fn rejects_invalid_configuration() {
        let requirement = QualityRequirement::symmetric(0.9).unwrap();
        let mut config = HybridConfig::new(requirement);
        config.estimation_units = 0;
        assert!(HybridOptimizer::new(config).is_err());
        let mut config = HybridConfig::new(requirement);
        config.sampling.unit_size = 0;
        assert!(HybridOptimizer::new(config).is_err());
    }

    #[test]
    fn empty_workload_is_rejected() {
        let requirement = QualityRequirement::symmetric(0.9).unwrap();
        let optimizer = HybridOptimizer::new(HybridConfig::new(requirement)).unwrap();
        let empty = Workload::from_pairs(vec![]).unwrap();
        let mut oracle = GroundTruthOracle::new();
        assert!(optimizer.optimize(&empty, &mut oracle).is_err());
    }
}
