//! Sampling pairs from workload subsets.
//!
//! The sampler owns the *randomness* of within-subset sampling but not the
//! labels: which pairs get drawn from a subset is decided by a seeded RNG whose
//! draw order never depends on label values, so a
//! [`LabelingSession`](crate::LabelingSession) replay reproduces the exact same
//! draws. Labels are then read from the session's answered slate (suspending
//! the replay when missing) or, through the legacy synchronous API, pulled
//! from an [`Oracle`].

use crate::oracle::Oracle;
use crate::session::{Drive, LabelSlate, SessionPhase};
use er_core::workload::{SubsetPartition, Workload};
use er_stats::SampleSummary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// The owned, workload-independent part of a [`SubsetSampler`]: cached draws,
/// cached summaries and the RNG state. The sampler itself borrows the workload
/// and partition, so it cannot be stored across session steps — a suspended
/// replay snapshots this state instead and restores an equivalent sampler on
/// the next step ([`SubsetSampler::restore`]).
#[derive(Debug, Clone)]
pub(crate) struct SamplerSnapshot {
    drawn: BTreeMap<usize, Vec<usize>>,
    cache: BTreeMap<usize, SampleSummary>,
    rng: StdRng,
}

impl SamplerSnapshot {
    /// The state of a fresh sampler with the given seed: restoring from this
    /// snapshot is equivalent to [`SubsetSampler::new`] with the same seed.
    pub(crate) fn new(seed: u64) -> Self {
        Self { drawn: BTreeMap::new(), cache: BTreeMap::new(), rng: StdRng::seed_from_u64(seed) }
    }
}

/// Draws simple random samples from workload subsets and caches the per-subset
/// draws and summaries so a subset is never re-sampled.
#[derive(Debug)]
pub struct SubsetSampler<'a> {
    workload: &'a Workload,
    partition: &'a SubsetPartition,
    samples_per_subset: usize,
    rng: StdRng,
    /// Within-subset sample indices, cached at first draw (ascending order).
    drawn: BTreeMap<usize, Vec<usize>>,
    cache: BTreeMap<usize, SampleSummary>,
}

impl<'a> SubsetSampler<'a> {
    /// Creates a sampler drawing `samples_per_subset` pairs from each sampled subset.
    pub fn new(
        workload: &'a Workload,
        partition: &'a SubsetPartition,
        samples_per_subset: usize,
        seed: u64,
    ) -> Self {
        Self {
            workload,
            partition,
            samples_per_subset: samples_per_subset.max(1),
            rng: StdRng::seed_from_u64(seed),
            drawn: BTreeMap::new(),
            cache: BTreeMap::new(),
        }
    }

    /// Rebuilds a sampler from a [`SamplerSnapshot`], continuing exactly where
    /// the snapshotted sampler stopped (same cached draws, same RNG state).
    pub(crate) fn restore(
        workload: &'a Workload,
        partition: &'a SubsetPartition,
        samples_per_subset: usize,
        snapshot: SamplerSnapshot,
    ) -> Self {
        Self {
            workload,
            partition,
            samples_per_subset: samples_per_subset.max(1),
            rng: snapshot.rng,
            drawn: snapshot.drawn,
            cache: snapshot.cache,
        }
    }

    /// The sampler's owned state, for storing across session steps.
    pub(crate) fn snapshot(&self) -> SamplerSnapshot {
        SamplerSnapshot {
            drawn: self.drawn.clone(),
            cache: self.cache.clone(),
            rng: self.rng.clone(),
        }
    }

    /// Number of distinct subsets sampled so far.
    pub fn sampled_subset_count(&self) -> usize {
        self.cache.len()
    }

    /// The cached sample summaries, keyed by subset index.
    pub fn samples(&self) -> &BTreeMap<usize, SampleSummary> {
        &self.cache
    }

    /// Whether a subset has already been sampled.
    pub fn is_sampled(&self, subset_index: usize) -> bool {
        self.cache.contains_key(&subset_index)
    }

    /// The workload indices sampled from a subset, drawing (and advancing the
    /// RNG) only the first time a subset is asked for.
    fn draw(&mut self, subset_index: usize) -> Vec<usize> {
        if let Some(drawn) = self.drawn.get(&subset_index) {
            return drawn.clone();
        }
        let range = self.partition.subset(subset_index).range();
        let size = range.len();
        let take = self.samples_per_subset.min(size);
        let indices: BTreeSet<usize> = if take >= size {
            range.clone().collect()
        } else {
            let mut drawn = BTreeSet::new();
            while drawn.len() < take {
                drawn.insert(self.rng.gen_range(range.start..range.end));
            }
            drawn
        };
        let drawn: Vec<usize> = indices.into_iter().collect();
        self.drawn.insert(subset_index, drawn.clone());
        drawn
    }

    /// Summarizes a drawn subset from answered labels and caches the result.
    fn summarize(
        &mut self,
        subset_index: usize,
        indices: &[usize],
        slate: &LabelSlate<'_>,
    ) -> SampleSummary {
        let positives = indices.iter().filter(|&&index| slate.is_match(index)).count();
        self.insert_summary(subset_index, indices.len(), positives)
    }

    /// Caches and returns a subset's sample summary — the single construction
    /// point shared by the slate and oracle labeling paths.
    fn insert_summary(
        &mut self,
        subset_index: usize,
        sample_size: usize,
        positives: usize,
    ) -> SampleSummary {
        let summary = SampleSummary::new(sample_size, positives)
            .expect("positives cannot exceed the sample size by construction");
        self.cache.insert(subset_index, summary);
        summary
    }

    /// Samples a subset (or returns the cached summary), reading labels from
    /// the answered slate and suspending the replay when they are missing.
    pub(crate) fn sample_core(
        &mut self,
        subset_index: usize,
        slate: &LabelSlate<'_>,
    ) -> Drive<SampleSummary> {
        if let Some(summary) = self.cache.get(&subset_index) {
            return Ok(*summary);
        }
        let indices = self.draw(subset_index);
        slate.require(SessionPhase::Sampling, indices.iter().copied())?;
        Ok(self.summarize(subset_index, &indices, slate))
    }

    /// Samples several subsets as **one** label batch: all draws happen first
    /// (their membership never depends on labels), then a single `require`
    /// covers every drawn pair, so a driver can dispatch the whole set in
    /// parallel within one round-trip.
    pub(crate) fn sample_many_core(
        &mut self,
        subsets: &[usize],
        slate: &LabelSlate<'_>,
    ) -> Drive<Vec<SampleSummary>> {
        let mut fresh: Vec<(usize, Vec<usize>)> = Vec::new();
        for &subset in subsets {
            if !self.cache.contains_key(&subset) {
                let indices = self.draw(subset);
                fresh.push((subset, indices));
            }
        }
        slate.require(
            SessionPhase::Sampling,
            fresh.iter().flat_map(|(_, indices)| indices.iter().copied()),
        )?;
        for (subset, indices) in &fresh {
            self.summarize(*subset, indices, slate);
        }
        Ok(subsets.iter().map(|subset| self.cache[subset]).collect())
    }

    /// Samples a subset (or returns the cached summary), labelling the drawn
    /// pairs synchronously through the oracle. This is the legacy blocking
    /// API; session replays use the suspendable path instead.
    pub fn sample(&mut self, subset_index: usize, oracle: &mut dyn Oracle) -> SampleSummary {
        if let Some(summary) = self.cache.get(&subset_index) {
            return *summary;
        }
        let indices = self.draw(subset_index);
        let positives = indices
            .iter()
            .filter(|&&index| oracle.label(self.workload.pair(index)).is_match())
            .count();
        self.insert_summary(subset_index, indices.len(), positives)
    }

    /// Samples every subset of the partition (the all-sampling regime).
    pub fn sample_all(&mut self, oracle: &mut dyn Oracle) -> Vec<SampleSummary> {
        (0..self.partition.len()).map(|i| self.sample(i, oracle)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{GroundTruthOracle, Oracle};
    use er_core::workload::Label;

    fn workload(n: usize) -> Workload {
        // Top half of the similarity range is all matches.
        Workload::from_scores((0..n).map(|i| (i as f64 / n as f64, i >= n / 2))).unwrap()
    }

    #[test]
    fn sampling_respects_budget_and_caches() {
        let w = workload(1_000);
        let partition = w.partition(100).unwrap();
        let mut sampler = SubsetSampler::new(&w, &partition, 10, 1);
        let mut oracle = GroundTruthOracle::new();
        let first = sampler.sample(3, &mut oracle);
        assert_eq!(first.sample_size, 10);
        let cost_after_first = oracle.labels_issued();
        assert_eq!(cost_after_first, 10);
        // Re-sampling the same subset is free and returns the cached summary.
        let second = sampler.sample(3, &mut oracle);
        assert_eq!(first, second);
        assert_eq!(oracle.labels_issued(), cost_after_first);
        assert_eq!(sampler.sampled_subset_count(), 1);
    }

    #[test]
    fn small_subsets_are_fully_sampled() {
        let w = workload(100);
        let partition = w.partition(20).unwrap();
        let mut sampler = SubsetSampler::new(&w, &partition, 50, 1);
        let mut oracle = GroundTruthOracle::new();
        let summary = sampler.sample(0, &mut oracle);
        assert_eq!(summary.sample_size, 20);
    }

    #[test]
    fn sampled_proportions_reflect_the_ground_truth() {
        let w = workload(2_000);
        let partition = w.partition(200).unwrap();
        let mut sampler = SubsetSampler::new(&w, &partition, 200, 1);
        let mut oracle = GroundTruthOracle::new();
        let summaries = sampler.sample_all(&mut oracle);
        // First subsets are pure non-matches, last ones pure matches.
        assert_eq!(summaries.first().unwrap().proportion(), 0.0);
        assert_eq!(summaries.last().unwrap().proportion(), 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let w = workload(1_000);
        let partition = w.partition(100).unwrap();
        let mut a = SubsetSampler::new(&w, &partition, 15, 9);
        let mut b = SubsetSampler::new(&w, &partition, 15, 9);
        let mut oracle_a = GroundTruthOracle::new();
        let mut oracle_b = GroundTruthOracle::new();
        assert_eq!(a.sample(5, &mut oracle_a), b.sample(5, &mut oracle_b));
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let w = workload(1_000);
        let partition = w.partition(100).unwrap();
        let mut reference = SubsetSampler::new(&w, &partition, 15, 9);
        let mut oracle = GroundTruthOracle::new();
        let first = reference.sample(2, &mut oracle);
        // Snapshot mid-flight, restore, and continue: the restored sampler
        // reproduces both the cached summary and the future draws.
        let snapshot = reference.snapshot();
        let mut restored = SubsetSampler::restore(&w, &partition, 15, snapshot);
        assert_eq!(restored.sample(2, &mut oracle), first);
        assert_eq!(restored.sample(7, &mut oracle), reference.sample(7, &mut oracle));
        // A fresh snapshot is equivalent to a fresh sampler.
        let mut from_fresh = SubsetSampler::restore(&w, &partition, 15, SamplerSnapshot::new(9));
        let mut fresh = SubsetSampler::new(&w, &partition, 15, 9);
        assert_eq!(from_fresh.sample(5, &mut oracle), fresh.sample(5, &mut oracle));
    }

    #[test]
    fn suspendable_sampling_matches_the_oracle_path() {
        // The same seed must draw the same pairs whether labels are pulled
        // from an oracle or read from an answered slate — that equivalence is
        // what makes session replays byte-identical with oracle runs.
        let w = workload(1_000);
        let partition = w.partition(100).unwrap();
        let mut oracle_sampler = SubsetSampler::new(&w, &partition, 15, 9);
        let mut oracle = GroundTruthOracle::new();
        let via_oracle = oracle_sampler.sample(5, &mut oracle);

        let mut session_sampler = SubsetSampler::new(&w, &partition, 15, 9);
        let empty: Vec<Option<Label>> = vec![None; w.len()];
        let slate = LabelSlate::new(&empty);
        // First attempt suspends with the drawn pairs.
        let suspended = session_sampler.sample_core(5, &slate);
        let indices = match suspended {
            Err(crate::session::Suspend::Need { indices, .. }) => indices,
            _ => panic!("expected a suspension for unanswered labels"),
        };
        assert_eq!(indices.len(), 15);
        // Answer them from the ground truth and retry: summary matches.
        let mut answered: Vec<Option<Label>> = vec![None; w.len()];
        for &i in &indices {
            answered[i] = Some(w.pair(i).ground_truth());
        }
        let slate = LabelSlate::new(&answered);
        let via_slate = session_sampler.sample_core(5, &slate).unwrap_or_else(|_| panic!());
        assert_eq!(via_oracle, via_slate);
    }
}
