//! Sampling pairs from workload subsets through the human oracle.

use crate::oracle::Oracle;
use er_core::workload::{SubsetPartition, Workload};
use er_stats::SampleSummary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Draws simple random samples from workload subsets, labels them through the
/// oracle, and caches the per-subset summaries so a subset is never re-sampled.
#[derive(Debug)]
pub struct SubsetSampler<'a> {
    workload: &'a Workload,
    partition: &'a SubsetPartition,
    samples_per_subset: usize,
    rng: StdRng,
    cache: BTreeMap<usize, SampleSummary>,
}

impl<'a> SubsetSampler<'a> {
    /// Creates a sampler drawing `samples_per_subset` pairs from each sampled subset.
    pub fn new(
        workload: &'a Workload,
        partition: &'a SubsetPartition,
        samples_per_subset: usize,
        seed: u64,
    ) -> Self {
        Self {
            workload,
            partition,
            samples_per_subset: samples_per_subset.max(1),
            rng: StdRng::seed_from_u64(seed),
            cache: BTreeMap::new(),
        }
    }

    /// Number of distinct subsets sampled so far.
    pub fn sampled_subset_count(&self) -> usize {
        self.cache.len()
    }

    /// The cached sample summaries, keyed by subset index.
    pub fn samples(&self) -> &BTreeMap<usize, SampleSummary> {
        &self.cache
    }

    /// Whether a subset has already been sampled.
    pub fn is_sampled(&self, subset_index: usize) -> bool {
        self.cache.contains_key(&subset_index)
    }

    /// Samples a subset (or returns the cached summary), labelling the drawn pairs
    /// through the oracle.
    pub fn sample(&mut self, subset_index: usize, oracle: &mut dyn Oracle) -> SampleSummary {
        if let Some(summary) = self.cache.get(&subset_index) {
            return *summary;
        }
        let range = self.partition.subset(subset_index).range();
        let size = range.len();
        let take = self.samples_per_subset.min(size);
        let indices: BTreeSet<usize> = if take >= size {
            range.clone().collect()
        } else {
            let mut drawn = BTreeSet::new();
            while drawn.len() < take {
                drawn.insert(self.rng.gen_range(range.start..range.end));
            }
            drawn
        };
        let mut positives = 0usize;
        for idx in &indices {
            if oracle.label(self.workload.pair(*idx)).is_match() {
                positives += 1;
            }
        }
        let summary = SampleSummary::new(indices.len(), positives)
            .expect("positives cannot exceed the sample size by construction");
        self.cache.insert(subset_index, summary);
        summary
    }

    /// Samples every subset of the partition (the all-sampling regime).
    pub fn sample_all(&mut self, oracle: &mut dyn Oracle) -> Vec<SampleSummary> {
        (0..self.partition.len()).map(|i| self.sample(i, oracle)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{GroundTruthOracle, Oracle};

    fn workload(n: usize) -> Workload {
        // Top half of the similarity range is all matches.
        Workload::from_scores((0..n).map(|i| (i as f64 / n as f64, i >= n / 2))).unwrap()
    }

    #[test]
    fn sampling_respects_budget_and_caches() {
        let w = workload(1_000);
        let partition = w.partition(100).unwrap();
        let mut sampler = SubsetSampler::new(&w, &partition, 10, 1);
        let mut oracle = GroundTruthOracle::new();
        let first = sampler.sample(3, &mut oracle);
        assert_eq!(first.sample_size, 10);
        let cost_after_first = oracle.labels_issued();
        assert_eq!(cost_after_first, 10);
        // Re-sampling the same subset is free and returns the cached summary.
        let second = sampler.sample(3, &mut oracle);
        assert_eq!(first, second);
        assert_eq!(oracle.labels_issued(), cost_after_first);
        assert_eq!(sampler.sampled_subset_count(), 1);
    }

    #[test]
    fn small_subsets_are_fully_sampled() {
        let w = workload(100);
        let partition = w.partition(20).unwrap();
        let mut sampler = SubsetSampler::new(&w, &partition, 50, 1);
        let mut oracle = GroundTruthOracle::new();
        let summary = sampler.sample(0, &mut oracle);
        assert_eq!(summary.sample_size, 20);
    }

    #[test]
    fn sampled_proportions_reflect_the_ground_truth() {
        let w = workload(2_000);
        let partition = w.partition(200).unwrap();
        let mut sampler = SubsetSampler::new(&w, &partition, 200, 1);
        let mut oracle = GroundTruthOracle::new();
        let summaries = sampler.sample_all(&mut oracle);
        // First subsets are pure non-matches, last ones pure matches.
        assert_eq!(summaries.first().unwrap().proportion(), 0.0);
        assert_eq!(summaries.last().unwrap().proportion(), 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let w = workload(1_000);
        let partition = w.partition(100).unwrap();
        let mut a = SubsetSampler::new(&w, &partition, 15, 9);
        let mut b = SubsetSampler::new(&w, &partition, 15, 9);
        let mut oracle_a = GroundTruthOracle::new();
        let mut oracle_b = GroundTruthOracle::new();
        assert_eq!(a.sample(5, &mut oracle_a), b.sample(5, &mut oracle_b));
    }
}
