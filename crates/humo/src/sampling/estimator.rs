//! Match-count estimators over subset unions, and the shared bound search.

use crate::requirement::QualityRequirement;
use er_core::workload::SubsetPartition;
use er_stats::{StratifiedEstimate, Stratum};

/// Estimates confidence bounds on the number of matching pairs inside a
/// contiguous union of workload subsets.
///
/// Subset indices refer to positions in the similarity-ordered
/// [`SubsetPartition`]; ranges are half-open.
pub trait MatchCountEstimator {
    /// Total number of pairs in the subset range.
    fn pair_count(&self, range: std::ops::Range<usize>) -> usize;

    /// Point estimate of the number of matching pairs in the range.
    fn estimate(&self, range: std::ops::Range<usize>) -> f64;

    /// Lower confidence bound on the number of matching pairs in the range.
    fn lower_bound(&self, range: std::ops::Range<usize>, confidence: f64) -> f64;

    /// Upper confidence bound on the number of matching pairs in the range.
    fn upper_bound(&self, range: std::ops::Range<usize>, confidence: f64) -> f64;
}

/// Stratified-sampling estimator: every subset carries its own sample
/// (Section VI-A). Bounds come from Student-t intervals on the stratified
/// aggregate (Eq. 12).
#[derive(Debug, Clone)]
pub struct StratifiedCountEstimator {
    strata: Vec<Stratum>,
}

impl StratifiedCountEstimator {
    /// Builds the estimator from the partition and one sample summary per subset.
    ///
    /// # Panics
    /// Panics if the number of summaries differs from the number of subsets.
    pub fn new(partition: &SubsetPartition, samples: &[er_stats::SampleSummary]) -> Self {
        assert_eq!(partition.len(), samples.len(), "one sample summary per subset is required");
        let strata = partition
            .subsets()
            .iter()
            .zip(samples)
            .map(|(subset, sample)| {
                Stratum::new(subset.len(), *sample)
                    .expect("sample size never exceeds the subset size")
            })
            .collect();
        Self { strata }
    }

    fn aggregate(&self, range: std::ops::Range<usize>) -> StratifiedEstimate {
        StratifiedEstimate::from_strata(self.strata[range].iter())
    }
}

impl MatchCountEstimator for StratifiedCountEstimator {
    fn pair_count(&self, range: std::ops::Range<usize>) -> usize {
        self.strata[range].iter().map(|s| s.population_size).sum()
    }

    fn estimate(&self, range: std::ops::Range<usize>) -> f64 {
        self.aggregate(range).estimated_positives
    }

    fn lower_bound(&self, range: std::ops::Range<usize>, confidence: f64) -> f64 {
        self.aggregate(range).lower_bound(confidence).unwrap_or(0.0)
    }

    fn upper_bound(&self, range: std::ops::Range<usize>, confidence: f64) -> f64 {
        let population: usize = self.pair_count(range.clone());
        self.aggregate(range).upper_bound(confidence).unwrap_or(population as f64)
    }
}

/// The shared bound search of Sections VI-A/VI-B.
///
/// Returns the subset-index range `(lo, hi)` of the human region `DH`
/// (half-open): the search first pushes the lower bound `lo` as far right as the
/// recall requirement allows (Eq. 13), then pulls the upper bound `hi` as far
/// left as the precision requirement allows (Eq. 14). Each of the two bound
/// estimates uses the per-bound confidence `√θ` so their conjunction holds with
/// confidence `θ`.
///
/// Both sweeps lean on whatever calibration the estimator carries: with the
/// default [`super::CalibratedEstimator`] the `lo` sweep's upper bounds are
/// floored at the quiet-run detection limits (the recall fix) and the `hi`
/// sweep's lower bounds are capped at the saturated-run pooled lower limits —
/// without the cap, near-pure samples make `lower_bound(hi..m)` collapse onto
/// "every pair matches" and precision is certified a hair too early on
/// mid-steep curves.
pub fn search_subset_bounds(
    estimator: &dyn MatchCountEstimator,
    num_subsets: usize,
    requirement: &QualityRequirement,
) -> (usize, usize) {
    let confidence = requirement.split_confidence();
    let beta = requirement.recall();
    let alpha = requirement.precision();

    // Recall: maximal lo such that the pairs at or above subset lo retain enough
    // matches. lo = 0 is trivially feasible (nothing is discarded).
    let recall_feasible = |lo: usize| -> bool {
        if lo == 0 {
            return true;
        }
        let missed_ub = estimator.upper_bound(0..lo, confidence);
        let kept_lb = estimator.lower_bound(lo..num_subsets, confidence);
        let denom = missed_ub + kept_lb;
        if denom <= 0.0 {
            return true;
        }
        kept_lb / denom >= beta
    };
    let mut lo = 0usize;
    while lo < num_subsets && recall_feasible(lo + 1) {
        lo += 1;
    }

    // Precision: minimal hi (>= lo) such that auto-labelling subsets [hi, m) as
    // match keeps precision above alpha. hi = m is trivially feasible (no pair is
    // auto-labelled match).
    let precision_feasible = |hi: usize| -> bool {
        let dh_lb = estimator.lower_bound(lo..hi, confidence);
        let plus_lb = estimator.lower_bound(hi..num_subsets, confidence);
        let plus_count = estimator.pair_count(hi..num_subsets) as f64;
        let denom = dh_lb + plus_count;
        if denom <= 0.0 {
            return true;
        }
        (dh_lb + plus_lb) / denom >= alpha
    };
    let mut hi = num_subsets;
    while hi > lo && precision_feasible(hi - 1) {
        hi -= 1;
    }

    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::workload::Workload;
    use er_stats::SampleSummary;

    /// A workload of `n` pairs where the top `match_fraction` of the similarity
    /// range is all matches and the rest all non-matches, fully sampled.
    fn fully_sampled(
        n: usize,
        unit: usize,
        match_fraction: f64,
    ) -> (SubsetPartition, Vec<SampleSummary>, Workload) {
        let cut = ((1.0 - match_fraction) * n as f64) as usize;
        let w = Workload::from_scores((0..n).map(|i| (i as f64 / n as f64, i >= cut))).unwrap();
        let partition = w.partition(unit).unwrap();
        let samples: Vec<SampleSummary> = partition
            .subsets()
            .iter()
            .map(|s| {
                let positives = w.matches_in_range(s.range());
                SampleSummary::new(s.len(), positives).unwrap()
            })
            .collect();
        (partition, samples, w)
    }

    #[test]
    fn stratified_estimator_point_estimates_are_exact_when_fully_sampled() {
        let (partition, samples, w) = fully_sampled(2_000, 100, 0.3);
        let est = StratifiedCountEstimator::new(&partition, &samples);
        let m = partition.len();
        assert_eq!(est.pair_count(0..m), 2_000);
        assert!((est.estimate(0..m) - w.total_matches() as f64).abs() < 1e-9);
        // Fully-sampled strata have zero variance, so the bounds collapse.
        assert!((est.lower_bound(0..m, 0.95) - est.estimate(0..m)).abs() < 1e-9);
        assert!((est.upper_bound(0..m, 0.95) - est.estimate(0..m)).abs() < 1e-9);
    }

    #[test]
    fn bounds_bracket_estimates_for_partial_samples() {
        let (partition, _, w) = fully_sampled(2_000, 100, 0.3);
        // Only 10 of every 100 pairs sampled per subset, proportions preserved.
        let samples: Vec<SampleSummary> = partition
            .subsets()
            .iter()
            .map(|s| {
                let p = w.match_proportion(s.range());
                SampleSummary::new(10, (p * 10.0).round() as usize).unwrap()
            })
            .collect();
        let est = StratifiedCountEstimator::new(&partition, &samples);
        let m = partition.len();
        let mid = est.estimate(0..m);
        assert!(est.lower_bound(0..m, 0.9) <= mid);
        assert!(est.upper_bound(0..m, 0.9) >= mid);
        // Mixed subsets exist only at the boundary; overall uncertainty is small but nonzero.
        assert!(est.upper_bound(0..m, 0.9) - est.lower_bound(0..m, 0.9) >= 0.0);
    }

    #[test]
    fn search_finds_a_narrow_dh_on_a_cleanly_separated_workload() {
        // 30% of pairs are matches and they are exactly the top of the range. With
        // exact per-subset counts the search should keep DH very small.
        let (partition, samples, _) = fully_sampled(4_000, 100, 0.3);
        let est = StratifiedCountEstimator::new(&partition, &samples);
        let requirement = QualityRequirement::symmetric(0.9).unwrap();
        let (lo, hi) = search_subset_bounds(&est, partition.len(), &requirement);
        assert!(lo <= hi);
        // The boundary between non-matches and matches sits at subset 28 of 40.
        let dh_subsets = hi - lo;
        assert!(dh_subsets <= 4, "expected a narrow DH, got {dh_subsets} subsets");
        // Both bounds must land near the class boundary (subset 28); with exact
        // counts the human region may even collapse to nothing.
        assert!((27..=31).contains(&lo), "lower bound {lo} far from the class boundary");
        assert!((27..=31).contains(&hi), "upper bound {hi} far from the class boundary");
    }

    #[test]
    fn stricter_requirements_never_shrink_dh() {
        let (partition, _, w) = fully_sampled(4_000, 100, 0.3);
        // Noisy partial samples to make the bounds matter.
        let samples: Vec<SampleSummary> = partition
            .subsets()
            .iter()
            .map(|s| {
                let p = w.match_proportion(s.range());
                SampleSummary::new(20, (p * 20.0).round() as usize).unwrap()
            })
            .collect();
        let est = StratifiedCountEstimator::new(&partition, &samples);
        let loose = QualityRequirement::symmetric(0.7).unwrap();
        let strict = QualityRequirement::symmetric(0.97).unwrap();
        let (lo_loose, hi_loose) = search_subset_bounds(&est, partition.len(), &loose);
        let (lo_strict, hi_strict) = search_subset_bounds(&est, partition.len(), &strict);
        assert!(hi_loose - lo_loose <= hi_strict - lo_strict);
    }

    #[test]
    fn degenerate_requirements() {
        let (partition, samples, _) = fully_sampled(1_000, 100, 0.5);
        let est = StratifiedCountEstimator::new(&partition, &samples);
        // Requiring nothing keeps DH empty.
        let trivial = QualityRequirement::new(0.0, 0.0, 0.9).unwrap();
        let (lo, hi) = search_subset_bounds(&est, partition.len(), &trivial);
        assert_eq!(lo, hi);
    }
}
