//! Tail-calibrated match-count estimation.
//!
//! # The flat-curve under-coverage bug the upper side fixes
//!
//! The GP (and stratified) count estimators derive their bounds from the
//! *observed* sampling variability. A sampled subset whose `k` drawn pairs are
//! all (or almost all) non-matches reports a proportion near `0` with a naive
//! binomial variance near zero, so the fitted posterior treats the whole
//! unsampled low-similarity region as essentially match-free with near-zero
//! uncertainty. Worse, the GP aggregates per-subset uncertainty as if the
//! deviations were independent, while the real failure mode in that region is a
//! *systematic* bias of the fitted curve: every subset hides a little match
//! mass below the samples' detection limit, and the errors add up coherently.
//! On flat match-proportion curves (the paper's τ ≈ 8 synthetic regime) the
//! discarded region silently loses enough matches that the recall requirement
//! fails in roughly half the runs — far above the nominal `1 − θ = 10%`
//! failure rate the paper guarantees (Section VI).
//!
//! # The mid-steep precision gap the lower side fixes
//!
//! The precision bound (the `hi` sweep of Eq. 14) is the exact mirror: it
//! trusts *lower* bounds over the kept region, and that region is informed by
//! near-pure ("pure-one") samples whose `k/k` positives cannot distinguish
//! `p = 1.0` from `p = 1 − 3/k`. The base interval collapses onto `p ≈ 1`,
//! the sweep certifies precision a hair too early, and on mid-steep curves
//! (τ ∈ [8, 14]) the precision requirement was missed in 20–45% of runs.
//!
//! # The fix
//!
//! An all-negative sample of size `k` does not say "no matches here"; it says
//! the local proportion is below the sample's *detection limit* — the one-sided
//! Clopper–Pearson upper bound `1 − (1 − c)^(1/k)` (≈ `3/k` at 95%). Dually, an
//! all-positive sample says the proportion is above the lower detection limit
//! `(1 − c)^(1/k)`. This module wraps any [`MatchCountEstimator`] and adds a
//! binomial tail bound on each side of it:
//!
//! * sampled subsets whose observed proportion is below a small *quiet*
//!   threshold delimit maximal **quiet runs** — contiguous subset ranges whose
//!   every informing sample is quiet; these are exactly the regions where the
//!   base estimator's upper bound can collapse while matches hide below the
//!   detection limit. Symmetrically, subsets informed exclusively by near-pure
//!   samples delimit **saturated runs**, where the base *lower* bound can
//!   collapse onto `p ≈ 1` while non-matches hide above the lower detection
//!   limit;
//! * each run's samples are pooled into one binomial observation (the
//!   per-subset sampling fractions are equal, so the pooled sample is a simple
//!   random sample of the sampled-subsets union) and the pooled one-sided
//!   Clopper–Pearson limit bounds the run's *mean* match proportion; the
//!   pooled sample size is deflated by how far the run's subsets sit from
//!   their nearest sample (see [`er_stats::effective_sample_size`]), so runs
//!   extrapolated far beyond the samples get wider limits. Pooling is what
//!   recovers the cross-subset information the GP was providing: per-subset
//!   limits would be severalfold weaker, pooled ones track `3/(Σk)`;
//! * an upper bound over a subset range is then
//!   `base_ub + Σ_runs max(0, pairs_in_run_overlap · run_limit − base_estimate)`:
//!   wherever the base estimator already allocates at least the
//!   detection-limit mass nothing changes, and where it claims near-certain
//!   emptiness the bound is floored at what the pooled samples can actually
//!   rule out. A lower bound is the mirror:
//!   `base_lb − Σ_runs max(0, base_estimate − pairs_in_run_overlap · run_limit)`,
//!   capping what the base claims in saturated runs at the pooled lower limit.
//!
//! Outside the runs (the steep "foot" of the curve and the mixed boundary
//! region) the samples carry real binomial noise, the base interval is honest,
//! and the calibration adds nothing — which is what keeps the human cost on
//! steep curves within a few percent of the uncalibrated estimator. All three
//! properties (restored recall coverage on flat curves, restored precision
//! coverage on mid-steep curves, near-zero cost overhead on steep ones) are
//! measured by the `calibration_coverage` harness in `crates/bench`.

use super::estimator::MatchCountEstimator;
use crate::HumoError;
use er_stats::{
    clopper_pearson_lower, clopper_pearson_upper, pooled_lower_limit, pooled_upper_limit,
    SampleSummary,
};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// What the pooled detection-limit allowance of a quiet (or saturated) run is
/// compared against before adjusting the base estimator's bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShortfallBaseline {
    /// Compare against the base *point estimate*: the detection-limit slack
    /// stacks on top of the base interval. Right for curve-fitting estimators
    /// (SAMP's GP): their slack models interpolation uncertainty under
    /// independence, which is orthogonal to the systematic tail bias the
    /// pooled limit guards against.
    #[default]
    Estimate,
    /// Compare against the base *bound itself* (the upper bound when topping
    /// up, the lower bound when capping): the detection limit only adjusts
    /// what the base interval does not already concede. Right when the base
    /// slack is computed from the very same draws as the pooled limit (the
    /// all-sampling stratified estimator), where stacking would double-count
    /// one source of sampling uncertainty.
    UpperBound,
}

/// Tuning knobs of the tail calibration, shared by the SAMP/ALL/HYBR paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailCalibration {
    /// Master switch. Disabled reproduces the uncalibrated (paper-faithful but
    /// flat-curve-unsafe) bounds.
    pub enabled: bool,
    /// How fast a sample's effective size decays with the distance (in GP
    /// length scales) between the sample and the subsets it is extrapolated
    /// to; see [`er_stats::effective_sample_size`]. `0` trusts samples at any
    /// distance, larger values widen the tail limits away from samples.
    pub distance_strength: f64,
    /// Whether the *lower* bounds are calibrated too: contiguous *saturated*
    /// runs (subsets informed exclusively by near-pure samples) pool their
    /// samples into one binomial observation, and the kept-region lower bound
    /// is capped at the pooled one-sided Clopper–Pearson lower limit.
    ///
    /// On by default: pooling recovers the cross-subset information the GP
    /// aggregates, so the cap tracks the `1 − 3/(Σk)` detection limit of the
    /// *pooled* draws instead of the severalfold-weaker per-subset limits an
    /// earlier form used. The pooled cap closes the mid-steep precision gap
    /// (the `hi` sweep of Eq. 14 no longer trusts `p = 1` from samples that
    /// cannot distinguish it from `p = 1 − 3/k`) at a steep-curve cost
    /// overhead measured under 4% by the `calibration_coverage` harness.
    /// [`TailCalibration::upper_only`] reproduces the earlier
    /// upper-side-only behaviour; the ALL optimizer's tuned default keeps
    /// this knob off because its stratified bounds never extrapolate (see
    /// `AllSamplingConfig::new`).
    pub calibrate_lower: bool,
    /// What the run allowances are compared against (see
    /// [`ShortfallBaseline`]).
    pub shortfall_baseline: ShortfallBaseline,
    /// A sampled subset is *quiet* when it observed at most this fraction of
    /// positives, and *saturated* when it observed at most this fraction of
    /// negatives (both with a scale-aware floor of one draw, see
    /// `quiet_threshold` in the module source). Quiet and saturated samples delimit the runs the
    /// detection-limit bounds apply to; larger values reach further into the
    /// foot (and shoulder) of the match-proportion curve at a higher human
    /// cost. Per-sample granularity matters: with large per-subset samples
    /// (SAMP's 100) a tight threshold suffices, while coarse samples (ALL's
    /// 20 per stratum) need a looser one to avoid fragmenting runs on single
    /// lucky draws.
    pub quiet_fraction: f64,
}

impl Default for TailCalibration {
    fn default() -> Self {
        Self {
            enabled: true,
            distance_strength: 1.0,
            calibrate_lower: true,
            shortfall_baseline: ShortfallBaseline::Estimate,
            quiet_fraction: 0.05,
        }
    }
}

impl TailCalibration {
    /// A configuration with the calibration switched off entirely.
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::default() }
    }

    /// The upper-side-only configuration (the pre-pooling default): recall
    /// tails are calibrated, the kept-region lower bounds are not. Kept for
    /// cost comparisons against the current default.
    pub fn upper_only() -> Self {
        Self { calibrate_lower: false, ..Self::default() }
    }
}

/// The count-of-draws threshold below which a sample counts as quiet (on its
/// positives) or saturated (on its negatives).
///
/// The nominal threshold is `quiet_fraction · n`. The floor of one draw only
/// applies when a single draw stays within twice the quiet fraction of the
/// sample (`1/n ≤ 2 · quiet_fraction`): for tiny samples an absolute
/// one-draw floor would classify a stratum as quiet on a single lucky draw
/// whose observed proportion is far above the quiet fraction, so below that
/// size the threshold decays proportionally and only an all-negative
/// (all-positive) sample qualifies.
fn quiet_threshold(sample_size: usize, quiet_fraction: f64) -> f64 {
    let nominal = quiet_fraction * sample_size as f64;
    nominal.max((2.0 * nominal).min(1.0))
}

fn is_quiet(summary: &SampleSummary, quiet_fraction: f64) -> bool {
    (summary.positives as f64) <= quiet_threshold(summary.sample_size, quiet_fraction)
}

fn is_saturated(summary: &SampleSummary, quiet_fraction: f64) -> bool {
    let negatives = summary.sample_size.saturating_sub(summary.positives);
    (negatives as f64) <= quiet_threshold(summary.sample_size, quiet_fraction)
}

/// One-sided Clopper–Pearson confidence matching the one-sided use of a base
/// estimator's two-sided interval at `confidence`.
pub(crate) fn one_sided_confidence(confidence: f64) -> f64 {
    if confidence <= 0.0 {
        0.0
    } else {
        ((1.0 + confidence) / 2.0).min(1.0 - 1e-9)
    }
}

/// Lower-bounds the match proportion of a fully labeled *census* region that is
/// about to be extrapolated beyond itself (HYBR's monotonicity step): a
/// saturated census — `matches/pairs` at or above the saturation threshold of
/// [`quiet_threshold`] — is capped at its one-sided Clopper–Pearson lower
/// limit, because observing `k/k` matches only certifies `p ≥ (1 − c)^(1/k)`,
/// not `p = 1`. A mixed census keeps its observed proportion: its non-matches
/// already concede real slack, and capping it too would re-introduce the
/// severalfold steep-curve cost the pooled form exists to avoid.
pub(crate) fn censored_proportion_lower(
    pairs: usize,
    matches: usize,
    quiet_fraction: f64,
    confidence: f64,
) -> f64 {
    if pairs == 0 {
        return 0.0;
    }
    let observed = matches as f64 / pairs as f64;
    let negatives = pairs.saturating_sub(matches);
    if (negatives as f64) > quiet_threshold(pairs, quiet_fraction) {
        return observed;
    }
    clopper_pearson_lower(pairs as f64, matches as f64, one_sided_confidence(confidence))
        .unwrap_or(0.0)
        .min(observed)
}

/// The mirror of [`censored_proportion_lower`] for the recall side: a *quiet*
/// census — `matches/pairs` at or below the quiet threshold — is floored at
/// its one-sided Clopper–Pearson upper limit, because observing `0/k` matches
/// only certifies `p ≤ 1 − (1 − c)^(1/k)`, not `p = 0`. A mixed census keeps
/// its observed proportion.
pub(crate) fn censored_proportion_upper(
    pairs: usize,
    matches: usize,
    quiet_fraction: f64,
    confidence: f64,
) -> f64 {
    if pairs == 0 {
        return 1.0;
    }
    let observed = matches as f64 / pairs as f64;
    if (matches as f64) > quiet_threshold(pairs, quiet_fraction) {
        return observed;
    }
    clopper_pearson_upper(pairs as f64, matches as f64, one_sided_confidence(confidence))
        .unwrap_or(1.0)
        .max(observed)
}

/// The nearest sampled subset on one side of a subset, and how far away its
/// input coordinate is.
#[derive(Debug, Clone, Copy)]
struct Neighbour {
    /// Index into the deduplicated summary table.
    summary: usize,
    /// `|input_i − input_sample|`, the extrapolation distance.
    distance: f64,
}

/// Per-subset tail information.
#[derive(Debug, Clone, Copy)]
struct SubsetTail {
    /// Number of pairs in the subset.
    size: f64,
    /// Nearest sampled subset at or below this one (in subset order).
    left: Option<Neighbour>,
    /// Nearest sampled subset at or above this one.
    right: Option<Neighbour>,
}

/// A maximal contiguous range of subsets informed exclusively by flagged
/// (quiet or saturated) samples, with those samples pooled into one binomial
/// observation.
#[derive(Debug, Clone)]
struct PooledRun {
    /// Half-open subset range `[start, end)`.
    start: usize,
    end: usize,
    /// Pooled sample size and positives over the run's distinct samples.
    pooled_size: f64,
    pooled_positives: f64,
    /// Largest distance from any member subset to its nearest informing
    /// sample; deflates the pooled size.
    max_distance: f64,
}

/// A [`MatchCountEstimator`] decorator that widens intervals to respect the
/// binomial detection limits of the underlying samples. See the module docs
/// for the construction.
#[derive(Debug, Clone)]
pub struct CalibratedEstimator<E> {
    base: E,
    config: TailCalibration,
    /// Prefix sums of subset sizes, for O(1) run-overlap pair counts.
    size_prefix: Vec<f64>,
    /// Maximal runs of subsets informed only by quiet samples (upper side).
    quiet_runs: Vec<PooledRun>,
    /// Maximal runs of subsets informed only by near-pure samples (lower side).
    saturated_runs: Vec<PooledRun>,
    /// Length scale used to normalize extrapolation distances.
    length_scale: f64,
    /// Cache of per-quiet-run pooled upper limits keyed by
    /// `(run, confidence bits)`. Confidence is validated before it is
    /// bit-keyed (a NaN key would poison the cache).
    run_limits: RefCell<HashMap<(usize, u64), f64>>,
    /// Cache of per-saturated-run pooled lower limits, keyed like
    /// [`Self::run_limits`].
    saturated_limits: RefCell<HashMap<(usize, u64), f64>>,
}

impl<E: MatchCountEstimator> CalibratedEstimator<E> {
    /// Wraps `base` with tail calibration.
    ///
    /// * `subset_sizes[i]` — pair count of subset `i`;
    /// * `inputs[i]` — the GP input coordinate of subset `i` (any monotone
    ///   coordinate works; distances are measured in this space);
    /// * `samples` — subset index → sample summary for every sampled subset;
    /// * `length_scale` — the fitted GP length scale (or any positive scale of
    ///   "how far a sample generalizes" in the input coordinate).
    pub fn new(
        base: E,
        subset_sizes: &[usize],
        inputs: &[f64],
        samples: &BTreeMap<usize, SampleSummary>,
        length_scale: f64,
        config: TailCalibration,
    ) -> Self {
        assert_eq!(subset_sizes.len(), inputs.len(), "one input coordinate per subset");
        let mut summaries = Vec::with_capacity(samples.len());
        let mut sampled: Vec<(usize, usize)> = Vec::with_capacity(samples.len()); // (subset, summary idx)
        for (&subset, &summary) in samples {
            sampled.push((subset, summaries.len()));
            summaries.push(summary);
        }

        let m = subset_sizes.len();
        // `sampled` is sorted by subset index (BTreeMap iteration order); two
        // sweeps find, for every subset, the nearest sampled subset on each side.
        let neighbour = |i: usize, entry: Option<(usize, usize)>| {
            entry.map(|(subset, summary)| Neighbour {
                summary,
                distance: (inputs[i] - inputs[subset]).abs(),
            })
        };
        let mut left_of: Vec<Option<Neighbour>> = vec![None; m];
        let mut cursor = 0usize;
        let mut last: Option<(usize, usize)> = None;
        for (i, slot) in left_of.iter_mut().enumerate() {
            while cursor < sampled.len() && sampled[cursor].0 <= i {
                last = Some(sampled[cursor]);
                cursor += 1;
            }
            *slot = neighbour(i, last);
        }
        let mut right_of: Vec<Option<Neighbour>> = vec![None; m];
        let mut cursor = sampled.len();
        let mut next: Option<(usize, usize)> = None;
        for i in (0..m).rev() {
            while cursor > 0 && sampled[cursor - 1].0 >= i {
                cursor -= 1;
                next = Some(sampled[cursor]);
            }
            right_of[i] = neighbour(i, next);
        }
        let subsets: Vec<SubsetTail> = (0..m)
            .map(|i| SubsetTail {
                size: subset_sizes[i] as f64,
                left: left_of[i],
                right: right_of[i],
            })
            .collect();

        let mut size_prefix = vec![0.0f64; m + 1];
        for i in 0..m {
            size_prefix[i + 1] = size_prefix[i] + subsets[i].size;
        }

        let quiet_flags: Vec<bool> =
            summaries.iter().map(|s| is_quiet(s, config.quiet_fraction)).collect();
        let saturated_flags: Vec<bool> =
            summaries.iter().map(|s| is_saturated(s, config.quiet_fraction)).collect();
        let quiet_runs = Self::pooled_runs(&subsets, &summaries, &quiet_flags);
        let saturated_runs = Self::pooled_runs(&subsets, &summaries, &saturated_flags);

        Self {
            base,
            config,
            size_prefix,
            quiet_runs,
            saturated_runs,
            length_scale: length_scale.max(1e-9),
            run_limits: RefCell::new(HashMap::new()),
            saturated_limits: RefCell::new(HashMap::new()),
        }
    }

    /// Builds the maximal runs of consecutive subsets whose every existing
    /// informing neighbour carries a flagged (quiet or saturated) sample,
    /// pooling the distinct flagged samples of each run.
    fn pooled_runs(
        subsets: &[SubsetTail],
        summaries: &[SampleSummary],
        flags: &[bool],
    ) -> Vec<PooledRun> {
        let member = |tail: &SubsetTail| -> bool {
            let mut any = false;
            for n in [tail.left, tail.right].into_iter().flatten() {
                if !flags[n.summary] {
                    return false;
                }
                any = true;
            }
            any
        };
        let mut runs = Vec::new();
        let mut i = 0usize;
        while i < subsets.len() {
            if !member(&subsets[i]) {
                i += 1;
                continue;
            }
            let start = i;
            let mut informing: BTreeSet<usize> = BTreeSet::new();
            let mut max_distance = 0.0f64;
            while i < subsets.len() && member(&subsets[i]) {
                let mut nearest = f64::INFINITY;
                for n in [subsets[i].left, subsets[i].right].into_iter().flatten() {
                    informing.insert(n.summary);
                    nearest = nearest.min(n.distance);
                }
                if nearest.is_finite() {
                    max_distance = max_distance.max(nearest);
                }
                i += 1;
            }
            let mut pooled_size = 0.0;
            let mut pooled_positives = 0.0;
            for &s in &informing {
                pooled_size += summaries[s].sample_size as f64;
                pooled_positives += summaries[s].positives as f64;
            }
            if pooled_size > 0.0 {
                runs.push(PooledRun { start, end: i, pooled_size, pooled_positives, max_distance });
            }
        }
        runs
    }

    /// The wrapped base estimator.
    pub fn base(&self) -> &E {
        &self.base
    }

    /// The calibration configuration in force.
    pub fn calibration(&self) -> &TailCalibration {
        &self.config
    }

    /// Rejects a confidence level that cannot key the limit caches: the caches
    /// are keyed by the confidence's bit pattern, so a NaN (or infinite, or
    /// out-of-range) confidence would silently poison them and fall through to
    /// unclamped bounds. The accepted domain `[0, 1)` matches
    /// [`crate::QualityRequirement::new`] — a degenerate `0` collapses the
    /// tail limits onto the observed proportions rather than erroring, so a
    /// requirement that was constructible keeps producing bounds.
    fn validate_confidence(confidence: f64) -> crate::Result<()> {
        if !(confidence.is_finite() && (0.0..1.0).contains(&confidence)) {
            return Err(HumoError::InvalidConfig(format!(
                "bound confidence must lie in [0, 1), got {confidence}"
            )));
        }
        Ok(())
    }

    /// Pooled upper limit on the mean match proportion of one quiet run.
    fn run_upper_limit(&self, run_index: usize, confidence: f64) -> f64 {
        let key = (run_index, confidence.to_bits());
        if let Some(&cached) = self.run_limits.borrow().get(&key) {
            return cached;
        }
        let run = &self.quiet_runs[run_index];
        let limit = pooled_upper_limit(
            run.pooled_size,
            run.pooled_positives,
            run.max_distance,
            self.length_scale,
            self.config.distance_strength,
            one_sided_confidence(confidence),
        )
        .unwrap_or(1.0);
        self.run_limits.borrow_mut().insert(key, limit);
        limit
    }

    /// Pooled lower limit on the mean match proportion of one saturated run.
    fn run_lower_limit(&self, run_index: usize, confidence: f64) -> f64 {
        let key = (run_index, confidence.to_bits());
        if let Some(&cached) = self.saturated_limits.borrow().get(&key) {
            return cached;
        }
        let run = &self.saturated_runs[run_index];
        let limit = pooled_lower_limit(
            run.pooled_size,
            run.pooled_positives,
            run.max_distance,
            self.length_scale,
            self.config.distance_strength,
            one_sided_confidence(confidence),
        )
        .unwrap_or(0.0);
        self.saturated_limits.borrow_mut().insert(key, limit);
        limit
    }

    /// The detection-limit shortfall of a range: for every quiet run
    /// overlapping it, how much match mass the pooled binomial limit allows
    /// beyond what the base estimator already grants there (the point estimate
    /// or the base upper bound, per [`ShortfallBaseline`]).
    fn quiet_shortfall(&self, range: &std::ops::Range<usize>, confidence: f64) -> f64 {
        let mut total = 0.0;
        for (index, run) in self.quiet_runs.iter().enumerate() {
            let lo = range.start.max(run.start);
            let hi = range.end.min(run.end);
            if lo >= hi {
                continue;
            }
            let pairs = self.size_prefix[hi] - self.size_prefix[lo];
            let allowed = pairs * self.run_upper_limit(index, confidence);
            let granted = match self.config.shortfall_baseline {
                ShortfallBaseline::Estimate => self.base.estimate(lo..hi),
                ShortfallBaseline::UpperBound => self.base.upper_bound(lo..hi, confidence),
            };
            total += (allowed - granted).max(0.0);
        }
        total
    }

    /// The saturation excess of a range — the lower-side mirror of
    /// [`Self::quiet_shortfall`]: for every saturated run overlapping it, how
    /// much match mass the base estimator claims beyond what the run's pooled
    /// binomial lower limit can actually certify. The claim is the point
    /// estimate ([`ShortfallBaseline::Estimate`]: the GP's independence-based
    /// slack is orthogonal to the coherent pure-one bias) or the base lower
    /// bound itself ([`ShortfallBaseline::UpperBound`]: the stratified slack
    /// shares the pooled limit's draws, so only the actual claim is capped).
    fn saturated_excess(&self, range: &std::ops::Range<usize>, confidence: f64) -> f64 {
        let mut total = 0.0;
        for (index, run) in self.saturated_runs.iter().enumerate() {
            let lo = range.start.max(run.start);
            let hi = range.end.min(run.end);
            if lo >= hi {
                continue;
            }
            let pairs = self.size_prefix[hi] - self.size_prefix[lo];
            let certified = pairs * self.run_lower_limit(index, confidence);
            let claimed = match self.config.shortfall_baseline {
                ShortfallBaseline::Estimate => self.base.estimate(lo..hi),
                ShortfallBaseline::UpperBound => self.base.lower_bound(lo..hi, confidence),
            };
            total += (claimed - certified).max(0.0);
        }
        total
    }

    /// Fallible lower bound: rejects a non-finite or out-of-range confidence
    /// with [`HumoError::InvalidConfig`] instead of bit-keying it into the
    /// limit caches. The [`MatchCountEstimator`] impl delegates here.
    pub fn try_lower_bound(
        &self,
        range: std::ops::Range<usize>,
        confidence: f64,
    ) -> crate::Result<f64> {
        Self::validate_confidence(confidence)?;
        let base = self.base.lower_bound(range.clone(), confidence);
        if !self.config.enabled || !self.config.calibrate_lower {
            return Ok(base);
        }
        Ok((base - self.saturated_excess(&range, confidence)).max(0.0))
    }

    /// Fallible upper bound; see [`Self::try_lower_bound`].
    pub fn try_upper_bound(
        &self,
        range: std::ops::Range<usize>,
        confidence: f64,
    ) -> crate::Result<f64> {
        Self::validate_confidence(confidence)?;
        let base = self.base.upper_bound(range.clone(), confidence);
        if !self.config.enabled {
            return Ok(base);
        }
        let count = self.pair_count(range.clone()) as f64;
        Ok((base + self.quiet_shortfall(&range, confidence)).min(count))
    }
}

impl<E: MatchCountEstimator> MatchCountEstimator for CalibratedEstimator<E> {
    fn pair_count(&self, range: std::ops::Range<usize>) -> usize {
        self.base.pair_count(range)
    }

    fn estimate(&self, range: std::ops::Range<usize>) -> f64 {
        self.base.estimate(range)
    }

    fn lower_bound(&self, range: std::ops::Range<usize>, confidence: f64) -> f64 {
        self.try_lower_bound(range, confidence).unwrap_or_else(|e| panic!("{e}"))
    }

    fn upper_bound(&self, range: std::ops::Range<usize>, confidence: f64) -> f64 {
        self.try_upper_bound(range, confidence).unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy base estimator with a fixed per-subset proportion and a
    /// zero-width interval — the worst case the calibration must widen.
    #[derive(Debug, Clone)]
    struct PointEstimator {
        sizes: Vec<usize>,
        proportions: Vec<f64>,
    }

    impl MatchCountEstimator for PointEstimator {
        fn pair_count(&self, range: std::ops::Range<usize>) -> usize {
            self.sizes[range].iter().sum()
        }
        fn estimate(&self, range: std::ops::Range<usize>) -> f64 {
            range.map(|i| self.sizes[i] as f64 * self.proportions[i]).sum()
        }
        fn lower_bound(&self, range: std::ops::Range<usize>, _c: f64) -> f64 {
            self.estimate(range)
        }
        fn upper_bound(&self, range: std::ops::Range<usize>, _c: f64) -> f64 {
            self.estimate(range)
        }
    }

    fn all_zero_setup(
        m: usize,
    ) -> (PointEstimator, Vec<usize>, Vec<f64>, BTreeMap<usize, SampleSummary>) {
        let sizes = vec![200usize; m];
        let inputs: Vec<f64> = (0..m).map(|i| i as f64 / m as f64).collect();
        let base = PointEstimator { sizes: sizes.clone(), proportions: vec![0.0; m] };
        // Sample every fourth subset, all observations negative.
        let mut samples = BTreeMap::new();
        for i in (0..m).step_by(4) {
            samples.insert(i, SampleSummary::new(100, 0).unwrap());
        }
        (base, sizes, inputs, samples)
    }

    /// The dual of [`all_zero_setup`]: a pure-one region whose base estimator
    /// claims every pair matches with a zero-width interval.
    fn all_one_setup(
        m: usize,
    ) -> (PointEstimator, Vec<usize>, Vec<f64>, BTreeMap<usize, SampleSummary>) {
        let sizes = vec![200usize; m];
        let inputs: Vec<f64> = (0..m).map(|i| i as f64 / m as f64).collect();
        let base = PointEstimator { sizes: sizes.clone(), proportions: vec![1.0; m] };
        let mut samples = BTreeMap::new();
        for i in (0..m).step_by(4) {
            samples.insert(i, SampleSummary::new(100, 100).unwrap());
        }
        (base, sizes, inputs, samples)
    }

    #[test]
    fn all_zero_samples_still_produce_a_detection_limit_upper_bound() {
        let (base, sizes, inputs, samples) = all_zero_setup(40);
        let est = CalibratedEstimator::new(
            base,
            &sizes,
            &inputs,
            &samples,
            0.25,
            TailCalibration::default(),
        );
        // The uncalibrated upper bound is exactly zero; the calibrated one must
        // allow at least the pooled detection limit of the 10 × 100 quiet
        // draws, yet stay far below "everything matches".
        let ub = est.upper_bound(0..40, 0.95);
        assert!(ub > 10.0, "detection-limit upper bound missing: {ub}");
        assert!(ub < 0.05 * est.pair_count(0..40) as f64, "tail bound absurdly wide: {ub}");
        // Lower bounds stay at zero (no positives anywhere).
        assert_eq!(est.lower_bound(0..40, 0.95), 0.0);
    }

    #[test]
    fn all_one_samples_cap_the_lower_bound_at_the_pooled_limit() {
        let (base, sizes, inputs, samples) = all_one_setup(40);
        let est = CalibratedEstimator::new(
            base.clone(),
            &sizes,
            &inputs,
            &samples,
            0.25,
            TailCalibration::default(),
        );
        // The uncalibrated lower bound claims all 8000 pairs match; the
        // calibrated one must concede at least the pooled lower detection
        // limit of the 10 × 100 pure-one draws, yet stay far above "nothing
        // is certain" — pooling keeps the concession near 3.7/(Σk) per pair.
        let pairs = est.pair_count(0..40) as f64;
        let lb = est.lower_bound(0..40, 0.95);
        assert!(lb < pairs, "pure-one lower bound not capped: {lb}");
        assert!(lb > 0.95 * pairs, "pooled lower cap absurdly weak: {lb}");
        // The upper bound is untouched (nothing is quiet here).
        assert_eq!(est.upper_bound(0..40, 0.95), pairs);
    }

    #[test]
    fn pooling_beats_per_subset_lower_limits() {
        // The naive per-subset form mins deflated 100-draw limits; the pooled
        // run certifies the 1000-draw limit. On a pure-one region the pooled
        // lower bound must be strictly tighter (larger) than the per-subset
        // one would be — that is the whole point of pooling.
        let (base, sizes, inputs, samples) = all_one_setup(40);
        let config = TailCalibration::default();
        let est = CalibratedEstimator::new(base, &sizes, &inputs, &samples, 0.25, config);
        let pairs = est.pair_count(0..40) as f64;
        let lb = est.lower_bound(0..40, 0.95);
        // Per-subset form: each subset capped at its own 100-draw limit
        // (at best — distance deflation only weakens it further).
        let per_subset =
            pairs * er_stats::detection_limit_lower(100.0, one_sided_confidence(0.95)).unwrap();
        assert!(
            lb > per_subset,
            "pooled cap {lb} not tighter than the per-subset form {per_subset}"
        );
    }

    #[test]
    fn shortfall_only_tops_up_what_the_base_already_allows() {
        let (mut base, sizes, inputs, samples) = all_zero_setup(40);
        // A base estimator that already assigns generous mass to the quiet
        // region must not be widened further.
        base.proportions = vec![0.1; 40];
        let generous = CalibratedEstimator::new(
            base.clone(),
            &sizes,
            &inputs,
            &samples,
            0.25,
            TailCalibration::default(),
        );
        let expected = base.upper_bound(0..40, 0.95);
        assert!((generous.upper_bound(0..40, 0.95) - expected).abs() < 1e-9);
    }

    #[test]
    fn saturation_only_caps_what_the_base_actually_claims() {
        let (mut base, sizes, inputs, samples) = all_one_setup(40);
        // A base estimator that already concedes plenty in the saturated
        // region must not be capped further.
        base.proportions = vec![0.9; 40];
        let modest = CalibratedEstimator::new(
            base.clone(),
            &sizes,
            &inputs,
            &samples,
            0.25,
            TailCalibration::default(),
        );
        let expected = base.lower_bound(0..40, 0.95);
        assert!((modest.lower_bound(0..40, 0.95) - expected).abs() < 1e-9);
    }

    #[test]
    fn calibration_never_narrows_the_base_interval() {
        let (mut base, sizes, inputs, mut samples) = all_zero_setup(32);
        // Mix in some positives so non-quiet samples, saturated samples and
        // both adjustment paths are exercised together.
        for (i, p) in base.proportions.iter_mut().enumerate() {
            *p = i as f64 / 32.0;
        }
        for (i, s) in samples.iter_mut() {
            *s = SampleSummary::new(100, (100 * i) / 32).unwrap();
        }
        let est = CalibratedEstimator::new(
            base.clone(),
            &sizes,
            &inputs,
            &samples,
            0.25,
            TailCalibration::default(),
        );
        for lo in [0usize, 5, 16] {
            for hi in [17usize, 25, 32] {
                for conf in [0.5, 0.9, 0.949] {
                    let b_lb = base.lower_bound(lo..hi, conf);
                    let b_ub = base.upper_bound(lo..hi, conf);
                    assert!(est.lower_bound(lo..hi, conf) <= b_lb + 1e-9);
                    assert!(est.lower_bound(lo..hi, conf) >= 0.0);
                    assert!(
                        est.upper_bound(lo..hi, conf)
                            >= b_ub.min(est.pair_count(lo..hi) as f64) - 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn disabled_calibration_is_transparent() {
        let (base, sizes, inputs, samples) = all_zero_setup(24);
        let est = CalibratedEstimator::new(
            base.clone(),
            &sizes,
            &inputs,
            &samples,
            0.25,
            TailCalibration::disabled(),
        );
        for range in [0..24usize, 3..9, 12..24] {
            assert_eq!(est.upper_bound(range.clone(), 0.9), base.upper_bound(range.clone(), 0.9));
            assert_eq!(est.lower_bound(range.clone(), 0.9), base.lower_bound(range, 0.9));
        }
    }

    #[test]
    fn upper_only_leaves_lower_bounds_alone() {
        let (base, sizes, inputs, samples) = all_one_setup(24);
        let est = CalibratedEstimator::new(
            base.clone(),
            &sizes,
            &inputs,
            &samples,
            0.25,
            TailCalibration::upper_only(),
        );
        for range in [0..24usize, 3..9, 12..24] {
            assert_eq!(est.lower_bound(range.clone(), 0.9), base.lower_bound(range, 0.9));
        }
    }

    #[test]
    fn sparser_samples_widen_the_tail_bound() {
        let m = 20usize;
        let sizes = vec![200usize; m];
        let inputs: Vec<f64> = (0..m).map(|i| i as f64 / m as f64).collect();
        let base = PointEstimator { sizes: sizes.clone(), proportions: vec![0.0; m] };
        let config = TailCalibration { distance_strength: 2.0, ..TailCalibration::default() };
        // Dense: a quiet sample every other subset. Sparse: only the two ends,
        // so the same pooled evidence sits much further from the middle.
        let mut dense = BTreeMap::new();
        for i in (0..m).step_by(2) {
            dense.insert(i, SampleSummary::new(100, 0).unwrap());
        }
        let mut sparse = BTreeMap::new();
        sparse.insert(0usize, SampleSummary::new(100, 0).unwrap());
        sparse.insert(m - 1, SampleSummary::new(100, 0).unwrap());
        let dense_est =
            CalibratedEstimator::new(base.clone(), &sizes, &inputs, &dense, 0.05, config);
        let sparse_est = CalibratedEstimator::new(base, &sizes, &inputs, &sparse, 0.05, config);
        let dense_ub = dense_est.upper_bound(0..m, 0.95);
        let sparse_ub = sparse_est.upper_bound(0..m, 0.95);
        // The sparse configuration pools fewer draws *and* extrapolates them
        // further, so per pair its limit must be wider. (Dense pools 10× the
        // draws; compare per-draw to isolate the distance effect.)
        assert!(
            sparse_ub > dense_ub,
            "sparser, further samples must yield a wider bound ({sparse_ub} vs {dense_ub})"
        );
    }

    #[test]
    fn sparser_samples_widen_the_lower_cap_too() {
        let m = 20usize;
        let sizes = vec![200usize; m];
        let inputs: Vec<f64> = (0..m).map(|i| i as f64 / m as f64).collect();
        let base = PointEstimator { sizes: sizes.clone(), proportions: vec![1.0; m] };
        let config = TailCalibration { distance_strength: 2.0, ..TailCalibration::default() };
        let mut dense = BTreeMap::new();
        for i in (0..m).step_by(2) {
            dense.insert(i, SampleSummary::new(100, 100).unwrap());
        }
        let mut sparse = BTreeMap::new();
        sparse.insert(0usize, SampleSummary::new(100, 100).unwrap());
        sparse.insert(m - 1, SampleSummary::new(100, 100).unwrap());
        let dense_est =
            CalibratedEstimator::new(base.clone(), &sizes, &inputs, &dense, 0.05, config);
        let sparse_est = CalibratedEstimator::new(base, &sizes, &inputs, &sparse, 0.05, config);
        let dense_lb = dense_est.lower_bound(0..m, 0.95);
        let sparse_lb = sparse_est.lower_bound(0..m, 0.95);
        assert!(
            sparse_lb < dense_lb,
            "sparser, further samples must yield a weaker lower cap ({sparse_lb} vs {dense_lb})"
        );
    }

    #[test]
    fn higher_confidence_widens_the_calibrated_bounds() {
        let (base, sizes, inputs, samples) = all_zero_setup(40);
        let est = CalibratedEstimator::new(
            base,
            &sizes,
            &inputs,
            &samples,
            0.25,
            TailCalibration::default(),
        );
        let narrow = est.upper_bound(0..40, 0.5);
        let wide = est.upper_bound(0..40, 0.99);
        assert!(wide > narrow);
        let (base, sizes, inputs, samples) = all_one_setup(40);
        let est = CalibratedEstimator::new(
            base,
            &sizes,
            &inputs,
            &samples,
            0.25,
            TailCalibration::default(),
        );
        let narrow = est.lower_bound(0..40, 0.5);
        let wide = est.lower_bound(0..40, 0.99);
        assert!(wide < narrow, "higher confidence must lower the lower bound ({wide} vs {narrow})");
    }

    #[test]
    fn loud_samples_break_quiet_runs() {
        let m = 30usize;
        let sizes = vec![100usize; m];
        let inputs: Vec<f64> = (0..m).map(|i| i as f64 / m as f64).collect();
        let base = PointEstimator { sizes: sizes.clone(), proportions: vec![0.0; m] };
        let mut samples = BTreeMap::new();
        for i in (0..m).step_by(3) {
            samples.insert(i, SampleSummary::new(100, 0).unwrap());
        }
        // A decidedly non-quiet sample in the middle.
        samples.insert(15usize, SampleSummary::new(100, 60).unwrap());
        let est = CalibratedEstimator::new(
            base,
            &sizes,
            &inputs,
            &samples,
            0.1,
            TailCalibration::default(),
        );
        // Subsets informed by the loud sample get no quiet-run shortfall: the
        // base estimator (zero-width here) is left alone.
        let near_loud = est.upper_bound(15..16, 0.95);
        assert_eq!(near_loud, 0.0, "loud-informed subsets must not be topped up");
        // Far from the loud sample the quiet run still applies.
        assert!(est.upper_bound(0..6, 0.95) > 0.0);
    }

    #[test]
    fn mixed_samples_break_saturated_runs() {
        let m = 30usize;
        let sizes = vec![100usize; m];
        let inputs: Vec<f64> = (0..m).map(|i| i as f64 / m as f64).collect();
        let base = PointEstimator { sizes: sizes.clone(), proportions: vec![1.0; m] };
        let mut samples = BTreeMap::new();
        for i in (0..m).step_by(3) {
            samples.insert(i, SampleSummary::new(100, 100).unwrap());
        }
        // A decidedly mixed sample in the middle.
        samples.insert(15usize, SampleSummary::new(100, 60).unwrap());
        let est = CalibratedEstimator::new(
            base,
            &sizes,
            &inputs,
            &samples,
            0.1,
            TailCalibration::default(),
        );
        // Subsets informed by the mixed sample get no saturation cap: the base
        // estimator's claim stands.
        let near_mixed = est.lower_bound(15..16, 0.95);
        assert_eq!(near_mixed, 100.0, "mixed-informed subsets must not be capped");
        // Far from the mixed sample the saturated run still applies.
        assert!(est.lower_bound(0..6, 0.95) < 600.0);
    }

    #[test]
    fn fully_sampled_pure_subsets_share_the_pooled_cap() {
        let sizes = vec![100usize; 4];
        let inputs = vec![0.0, 0.33, 0.66, 1.0];
        let base = PointEstimator { sizes: sizes.clone(), proportions: vec![1.0; 4] };
        let mut samples = BTreeMap::new();
        for i in 0..4usize {
            samples.insert(i, SampleSummary::new(50, 50).unwrap());
        }
        let est = CalibratedEstimator::new(
            base,
            &sizes,
            &inputs,
            &samples,
            0.3,
            TailCalibration::default(),
        );
        // Every subset sampled at distance zero, all pure-one: one saturated
        // run pooling 200 draws. The cap must be the pooled 200-draw limit,
        // not the far weaker per-subset 50-draw one.
        let lb = est.lower_bound(1..2, 0.9);
        let pooled =
            100.0 * er_stats::detection_limit_lower(200.0, one_sided_confidence(0.9)).unwrap();
        assert!(lb < 100.0, "pure-one subset must concede its detection limit ({lb})");
        assert!((lb - pooled).abs() < 1e-9, "expected the pooled cap {pooled}, got {lb}");
    }

    #[test]
    fn quiet_threshold_is_unchanged_for_samp_scale_samples() {
        // Regression pin for the scale-aware floor: at SAMP's granularity
        // (100 draws, quiet fraction 0.05) the classification is byte-identical
        // to the historical `max(1, 0.05 · n)` rule — quiet up to 5 positives,
        // loud from 6; saturated from 95 positives.
        for positives in 0..=100usize {
            let s = SampleSummary::new(100, positives).unwrap();
            assert_eq!(is_quiet(&s, 0.05), positives <= 5, "positives={positives}");
            assert_eq!(is_saturated(&s, 0.05), positives >= 95, "positives={positives}");
        }
        // ALL's stratified granularity (20 draws, quiet fraction 0.1) is also
        // unchanged: quiet up to 2 positives.
        for positives in 0..=20usize {
            let s = SampleSummary::new(20, positives).unwrap();
            assert_eq!(is_quiet(&s, 0.1), positives <= 2, "positives={positives}");
            assert_eq!(is_saturated(&s, 0.1), positives >= 18, "positives={positives}");
        }
    }

    #[test]
    fn tiny_strata_are_not_quiet_on_a_single_lucky_draw() {
        // The historical absolute floor of one positive classified an 8-draw
        // stratum with one positive (12.5% observed!) as quiet. The
        // scale-aware floor requires an all-negative sample once a single
        // draw exceeds twice the quiet fraction.
        let one_of_eight = SampleSummary::new(8, 1).unwrap();
        assert!(!is_quiet(&one_of_eight, 0.05), "1/8 positives must not count as quiet");
        assert!(is_quiet(&SampleSummary::new(8, 0).unwrap(), 0.05));
        // The mirror holds for saturation.
        assert!(!is_saturated(&SampleSummary::new(8, 7).unwrap(), 0.05));
        assert!(is_saturated(&SampleSummary::new(8, 8).unwrap(), 0.05));
        // Where a single draw stays within 2× the quiet fraction the floor
        // still applies (12 draws at 5%: 1/12 ≈ 8.3% ≤ 10%).
        assert!(is_quiet(&SampleSummary::new(12, 1).unwrap(), 0.05));
    }

    #[test]
    fn invalid_confidence_is_rejected_not_cached() {
        let (base, sizes, inputs, samples) = all_zero_setup(16);
        let est = CalibratedEstimator::new(
            base,
            &sizes,
            &inputs,
            &samples,
            0.25,
            TailCalibration::default(),
        );
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1.0, -0.5, 2.0] {
            assert!(
                est.try_lower_bound(0..16, bad).is_err(),
                "lower bound accepted confidence {bad}"
            );
            assert!(
                est.try_upper_bound(0..16, bad).is_err(),
                "upper bound accepted confidence {bad}"
            );
        }
        // Nothing was cached under a poisoned key.
        assert!(est.run_limits.borrow().is_empty());
        assert!(est.saturated_limits.borrow().is_empty());
        // Valid confidences still work afterwards, and the degenerate zero
        // accepted by `QualityRequirement::new` keeps producing bounds
        // (collapsed onto the observed proportions) instead of erroring.
        assert!(est.try_upper_bound(0..16, 0.9).unwrap() > 0.0);
        assert!(est.try_upper_bound(0..16, 0.0).is_ok());
        assert!(est.try_lower_bound(0..16, 0.0).is_ok());
    }

    #[test]
    fn censored_census_proportion_caps_only_saturated_borders() {
        // A pure 400-pair census is capped at its CP lower limit, strictly
        // inside (0.98, 1): conceding ≈ 3.7/k, not "p = 1" and not collapse.
        let capped = censored_proportion_lower(400, 400, 0.05, 0.9);
        assert!(capped < 1.0, "pure census must concede its detection limit ({capped})");
        assert!(capped > 0.98, "pure-census cap absurdly weak ({capped})");
        // A near-pure census within the saturation threshold is capped too,
        // and the cap never exceeds the observed proportion.
        let near = censored_proportion_lower(400, 395, 0.05, 0.9);
        assert!(near < 395.0 / 400.0);
        // A decidedly mixed census keeps its observed proportion untouched.
        assert_eq!(censored_proportion_lower(400, 300, 0.05, 0.9), 0.75);
        // Degenerate inputs stay safe.
        assert_eq!(censored_proportion_lower(0, 0, 0.05, 0.9), 0.0);
    }

    #[test]
    fn censored_census_proportion_floors_only_quiet_borders() {
        // The recall-side mirror: an all-negative 400-pair census is floored
        // at its CP upper limit, strictly inside (0, 0.02).
        let floored = censored_proportion_upper(400, 0, 0.05, 0.9);
        assert!(floored > 0.0, "quiet census must concede its detection limit ({floored})");
        assert!(floored < 0.02, "quiet-census floor absurdly weak ({floored})");
        // A near-quiet census within the threshold is floored too, never
        // below its observed proportion.
        let near = censored_proportion_upper(400, 5, 0.05, 0.9);
        assert!(near > 5.0 / 400.0);
        // A decidedly mixed census keeps its observed proportion untouched.
        assert_eq!(censored_proportion_upper(400, 100, 0.05, 0.9), 0.25);
        // Degenerate inputs stay safe (an empty census certifies nothing).
        assert_eq!(censored_proportion_upper(0, 0, 0.05, 0.9), 1.0);
    }

    #[test]
    #[should_panic(expected = "bound confidence must lie in [0, 1)")]
    fn nan_confidence_panics_on_the_infallible_path() {
        let (base, sizes, inputs, samples) = all_zero_setup(8);
        let est = CalibratedEstimator::new(
            base,
            &sizes,
            &inputs,
            &samples,
            0.25,
            TailCalibration::default(),
        );
        est.upper_bound(0..8, f64::NAN);
    }
}
