//! Tail-calibrated match-count estimation.
//!
//! # The flat-curve under-coverage bug this fixes
//!
//! The GP (and stratified) count estimators derive their bounds from the
//! *observed* sampling variability. A sampled subset whose `k` drawn pairs are
//! all (or almost all) non-matches reports a proportion near `0` with a naive
//! binomial variance near zero, so the fitted posterior treats the whole
//! unsampled low-similarity region as essentially match-free with near-zero
//! uncertainty. Worse, the GP aggregates per-subset uncertainty as if the
//! deviations were independent, while the real failure mode in that region is a
//! *systematic* bias of the fitted curve: every subset hides a little match
//! mass below the samples' detection limit, and the errors add up coherently.
//! On flat match-proportion curves (the paper's τ ≈ 8 synthetic regime) the
//! discarded region silently loses enough matches that the recall requirement
//! fails in roughly half the runs — far above the nominal `1 − θ = 10%`
//! failure rate the paper guarantees (Section VI).
//!
//! # The fix
//!
//! An all-negative sample of size `k` does not say "no matches here"; it says
//! the local proportion is below the sample's *detection limit* — the one-sided
//! Clopper–Pearson upper bound `1 − (1 − c)^(1/k)` (≈ `3/k` at 95%). This
//! module wraps any [`MatchCountEstimator`] and adds a binomial tail bound on
//! top of it:
//!
//! * sampled subsets whose observed proportion is below a small *quiet*
//!   threshold delimit maximal **quiet runs** — contiguous subset ranges whose
//!   every informing sample is quiet; these are exactly the regions where the
//!   base estimator's interval can collapse while matches hide below the
//!   detection limit;
//! * each run's quiet samples are pooled into one binomial observation (the
//!   per-subset sampling fractions are equal, so the pooled sample is a simple
//!   random sample of the sampled-subsets union) and the pooled one-sided
//!   Clopper–Pearson upper limit bounds the run's *mean* match proportion; the
//!   pooled sample size is deflated by how far the run's subsets sit from
//!   their nearest sample (see [`er_stats::effective_sample_size`]), so runs
//!   extrapolated far beyond the samples get wider limits;
//! * an upper bound over a subset range is then
//!   `base_ub + Σ_runs max(0, pairs_in_run_overlap · run_limit − base_estimate)`:
//!   wherever the base estimator already allocates at least the
//!   detection-limit mass nothing changes, and where it claims near-certain
//!   emptiness the bound is floored at what the pooled samples can actually
//!   rule out.
//!
//! Outside quiet runs (the steep "foot" of the curve and the match-rich top)
//! the samples carry real binomial noise, the base interval is honest, and the
//! calibration adds nothing — which is what keeps the human cost on steep
//! curves within a few percent of the uncalibrated estimator. Both properties
//! (restored coverage on flat curves, near-zero cost overhead on steep ones)
//! are measured by the `calibration_coverage` harness in `crates/bench`.

use super::estimator::MatchCountEstimator;
use er_stats::{
    clopper_pearson_lower, clopper_pearson_upper, effective_sample_size, SampleSummary,
};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Absolute floor on the quiet-positives threshold, so tiny samples are not
/// classified by a single lucky draw.
const QUIET_MIN_POSITIVES: f64 = 1.0;

/// What the pooled detection-limit allowance of a quiet run is compared
/// against before topping up the base estimator's upper bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShortfallBaseline {
    /// Compare against the base *point estimate*: the detection-limit slack
    /// stacks on top of the base interval. Right for curve-fitting estimators
    /// (SAMP's GP): their slack models interpolation uncertainty under
    /// independence, which is orthogonal to the systematic tail bias the
    /// pooled limit guards against.
    #[default]
    Estimate,
    /// Compare against the base *upper bound*: the detection limit only tops
    /// up what the base interval does not already grant. Right when the base
    /// slack is computed from the very same draws as the pooled limit (the
    /// all-sampling stratified estimator), where stacking would double-count
    /// one source of sampling uncertainty.
    UpperBound,
}

/// Tuning knobs of the tail calibration, shared by the SAMP/ALL/HYBR paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailCalibration {
    /// Master switch. Disabled reproduces the uncalibrated (paper-faithful but
    /// flat-curve-unsafe) bounds.
    pub enabled: bool,
    /// How fast a sample's effective size decays with the distance (in GP
    /// length scales) between the sample and the subsets it is extrapolated
    /// to; see [`er_stats::effective_sample_size`]. `0` trusts samples at any
    /// distance, larger values widen the tail limits away from samples.
    pub distance_strength: f64,
    /// Whether the *lower* bounds are calibrated too, by `min`-ing the base
    /// bound with per-subset Clopper–Pearson lower limits.
    ///
    /// Off by default: the per-subset limits ignore the smoothness information
    /// the GP aggregates across subsets, so they are far weaker than the GP
    /// joint bound and inflate the human region severalfold on steep curves.
    /// The recall under-coverage this module exists to fix is driven entirely
    /// by the *upper* bound on the discarded region; enable this only when the
    /// match-proportion curve is so irregular that the GP lower bounds
    /// themselves are suspect.
    pub calibrate_lower: bool,
    /// What the quiet-run allowance is compared against (see
    /// [`ShortfallBaseline`]).
    pub shortfall_baseline: ShortfallBaseline,
    /// A sampled subset is *quiet* when it observed at most this fraction of
    /// positives (with an absolute floor of one positive). Quiet samples
    /// delimit the runs the detection-limit bound applies to; larger values
    /// reach further into the foot of the match-proportion curve at a higher
    /// human cost. Per-sample granularity matters: with large per-subset
    /// samples (SAMP's 100) a tight threshold suffices, while coarse samples
    /// (ALL's 20 per stratum) need a looser one to avoid fragmenting runs on
    /// single lucky draws.
    pub quiet_fraction: f64,
}

impl Default for TailCalibration {
    fn default() -> Self {
        Self {
            enabled: true,
            distance_strength: 1.0,
            calibrate_lower: false,
            shortfall_baseline: ShortfallBaseline::Estimate,
            quiet_fraction: 0.05,
        }
    }
}

impl TailCalibration {
    /// A configuration with the calibration switched off entirely.
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::default() }
    }
}

/// The nearest sampled subset on one side of a subset, and how far away its
/// input coordinate is.
#[derive(Debug, Clone, Copy)]
struct Neighbour {
    /// Index into the deduplicated summary table.
    summary: usize,
    /// `|input_i − input_sample|`, the extrapolation distance.
    distance: f64,
}

/// Per-subset tail information.
#[derive(Debug, Clone, Copy)]
struct SubsetTail {
    /// Number of pairs in the subset.
    size: f64,
    /// Nearest sampled subset at or below this one (in subset order).
    left: Option<Neighbour>,
    /// Nearest sampled subset at or above this one.
    right: Option<Neighbour>,
}

/// A maximal contiguous range of subsets informed exclusively by quiet samples.
#[derive(Debug, Clone)]
struct QuietRun {
    /// Half-open subset range `[start, end)`.
    start: usize,
    end: usize,
    /// Pooled sample size and positives over the run's distinct quiet samples.
    pooled_size: f64,
    pooled_positives: f64,
    /// Largest distance from any member subset to its nearest informing
    /// sample; deflates the pooled size.
    max_distance: f64,
}

/// A [`MatchCountEstimator`] decorator that widens intervals to respect the
/// binomial detection limits of the underlying samples. See the module docs
/// for the construction.
#[derive(Debug, Clone)]
pub struct CalibratedEstimator<E> {
    base: E,
    config: TailCalibration,
    summaries: Vec<SampleSummary>,
    subsets: Vec<SubsetTail>,
    /// Prefix sums of subset sizes, for O(1) run-overlap pair counts.
    size_prefix: Vec<f64>,
    runs: Vec<QuietRun>,
    /// Length scale used to normalize extrapolation distances.
    length_scale: f64,
    /// Cache of per-subset `(p_lb, p_ub)` keyed by `(subset, confidence bits)`.
    limits: RefCell<HashMap<(usize, u64), (f64, f64)>>,
    /// Cache of per-run pooled upper limits keyed by `(run, confidence bits)`.
    run_limits: RefCell<HashMap<(usize, u64), f64>>,
}

fn is_quiet(summary: &SampleSummary, quiet_fraction: f64) -> bool {
    let threshold = QUIET_MIN_POSITIVES.max(quiet_fraction * summary.sample_size as f64);
    (summary.positives as f64) <= threshold
}

impl<E: MatchCountEstimator> CalibratedEstimator<E> {
    /// Wraps `base` with tail calibration.
    ///
    /// * `subset_sizes[i]` — pair count of subset `i`;
    /// * `inputs[i]` — the GP input coordinate of subset `i` (any monotone
    ///   coordinate works; distances are measured in this space);
    /// * `samples` — subset index → sample summary for every sampled subset;
    /// * `length_scale` — the fitted GP length scale (or any positive scale of
    ///   "how far a sample generalizes" in the input coordinate).
    pub fn new(
        base: E,
        subset_sizes: &[usize],
        inputs: &[f64],
        samples: &BTreeMap<usize, SampleSummary>,
        length_scale: f64,
        config: TailCalibration,
    ) -> Self {
        assert_eq!(subset_sizes.len(), inputs.len(), "one input coordinate per subset");
        let mut summaries = Vec::with_capacity(samples.len());
        let mut sampled: Vec<(usize, usize)> = Vec::with_capacity(samples.len()); // (subset, summary idx)
        for (&subset, &summary) in samples {
            sampled.push((subset, summaries.len()));
            summaries.push(summary);
        }

        let m = subset_sizes.len();
        // `sampled` is sorted by subset index (BTreeMap iteration order); two
        // sweeps find, for every subset, the nearest sampled subset on each side.
        let neighbour = |i: usize, entry: Option<(usize, usize)>| {
            entry.map(|(subset, summary)| Neighbour {
                summary,
                distance: (inputs[i] - inputs[subset]).abs(),
            })
        };
        let mut left_of: Vec<Option<Neighbour>> = vec![None; m];
        let mut cursor = 0usize;
        let mut last: Option<(usize, usize)> = None;
        for (i, slot) in left_of.iter_mut().enumerate() {
            while cursor < sampled.len() && sampled[cursor].0 <= i {
                last = Some(sampled[cursor]);
                cursor += 1;
            }
            *slot = neighbour(i, last);
        }
        let mut right_of: Vec<Option<Neighbour>> = vec![None; m];
        let mut cursor = sampled.len();
        let mut next: Option<(usize, usize)> = None;
        for i in (0..m).rev() {
            while cursor > 0 && sampled[cursor - 1].0 >= i {
                cursor -= 1;
                next = Some(sampled[cursor]);
            }
            right_of[i] = neighbour(i, next);
        }
        let subsets: Vec<SubsetTail> = (0..m)
            .map(|i| SubsetTail {
                size: subset_sizes[i] as f64,
                left: left_of[i],
                right: right_of[i],
            })
            .collect();

        let mut size_prefix = vec![0.0f64; m + 1];
        for i in 0..m {
            size_prefix[i + 1] = size_prefix[i] + subsets[i].size;
        }

        let quiet_flags: Vec<bool> =
            summaries.iter().map(|s| is_quiet(s, config.quiet_fraction)).collect();
        let runs = Self::quiet_runs(&subsets, &summaries, &quiet_flags);

        Self {
            base,
            config,
            summaries,
            subsets,
            size_prefix,
            runs,
            length_scale: length_scale.max(1e-9),
            limits: RefCell::new(HashMap::new()),
            run_limits: RefCell::new(HashMap::new()),
        }
    }

    /// Builds the maximal quiet runs: consecutive subsets whose every existing
    /// informing neighbour is a quiet sample.
    fn quiet_runs(
        subsets: &[SubsetTail],
        summaries: &[SampleSummary],
        quiet_flags: &[bool],
    ) -> Vec<QuietRun> {
        let member = |tail: &SubsetTail| -> bool {
            let mut any = false;
            for n in [tail.left, tail.right].into_iter().flatten() {
                if !quiet_flags[n.summary] {
                    return false;
                }
                any = true;
            }
            any
        };
        let mut runs = Vec::new();
        let mut i = 0usize;
        while i < subsets.len() {
            if !member(&subsets[i]) {
                i += 1;
                continue;
            }
            let start = i;
            let mut informing: BTreeSet<usize> = BTreeSet::new();
            let mut max_distance = 0.0f64;
            while i < subsets.len() && member(&subsets[i]) {
                let mut nearest = f64::INFINITY;
                for n in [subsets[i].left, subsets[i].right].into_iter().flatten() {
                    informing.insert(n.summary);
                    nearest = nearest.min(n.distance);
                }
                if nearest.is_finite() {
                    max_distance = max_distance.max(nearest);
                }
                i += 1;
            }
            let mut pooled_size = 0.0;
            let mut pooled_positives = 0.0;
            for &s in &informing {
                pooled_size += summaries[s].sample_size as f64;
                pooled_positives += summaries[s].positives as f64;
            }
            if pooled_size > 0.0 {
                runs.push(QuietRun { start, end: i, pooled_size, pooled_positives, max_distance });
            }
        }
        runs
    }

    /// The wrapped base estimator.
    pub fn base(&self) -> &E {
        &self.base
    }

    /// The calibration configuration in force.
    pub fn calibration(&self) -> &TailCalibration {
        &self.config
    }

    /// One-sided Clopper–Pearson confidence used for the tail limits so they
    /// match the one-sided use of the base estimator's two-sided interval.
    fn one_sided(confidence: f64) -> f64 {
        if confidence <= 0.0 {
            0.0
        } else {
            ((1.0 + confidence) / 2.0).min(1.0 - 1e-9)
        }
    }

    /// Pooled upper limit on the mean match proportion of one quiet run.
    fn run_upper_limit(&self, run_index: usize, confidence: f64) -> f64 {
        let key = (run_index, confidence.to_bits());
        if let Some(&cached) = self.run_limits.borrow().get(&key) {
            return cached;
        }
        let run = &self.runs[run_index];
        let eff = effective_sample_size(
            run.pooled_size,
            run.max_distance,
            self.length_scale,
            self.config.distance_strength,
        );
        let positives = run.pooled_positives * eff / run.pooled_size;
        let limit =
            clopper_pearson_upper(eff, positives, Self::one_sided(confidence)).unwrap_or(1.0);
        self.run_limits.borrow_mut().insert(key, limit);
        limit
    }

    /// The detection-limit shortfall of a range: for every quiet run
    /// overlapping it, how much match mass the pooled binomial limit allows
    /// beyond what the base estimator already grants there (the point estimate
    /// or the base upper bound, per [`ShortfallBaseline`]).
    fn quiet_shortfall(&self, range: &std::ops::Range<usize>, confidence: f64) -> f64 {
        let mut total = 0.0;
        for (index, run) in self.runs.iter().enumerate() {
            let lo = range.start.max(run.start);
            let hi = range.end.min(run.end);
            if lo >= hi {
                continue;
            }
            let pairs = self.size_prefix[hi] - self.size_prefix[lo];
            let allowed = pairs * self.run_upper_limit(index, confidence);
            let granted = match self.config.shortfall_baseline {
                ShortfallBaseline::Estimate => self.base.estimate(lo..hi),
                ShortfallBaseline::UpperBound => self.base.upper_bound(lo..hi, confidence),
            };
            total += (allowed - granted).max(0.0);
        }
        total
    }

    /// Distance-deflated Clopper–Pearson limits of one neighbouring sample
    /// (used by the opt-in lower-bound calibration).
    fn neighbour_limits(&self, n: Neighbour, cp_confidence: f64) -> (f64, f64) {
        let summary = self.summaries[n.summary];
        let size = summary.sample_size.max(1) as f64;
        let eff = effective_sample_size(
            size,
            n.distance,
            self.length_scale,
            self.config.distance_strength,
        );
        let positives = summary.positives as f64 * eff / size;
        let ub = clopper_pearson_upper(eff, positives, cp_confidence).unwrap_or(1.0);
        let lb = clopper_pearson_lower(eff, positives, cp_confidence).unwrap_or(0.0);
        (lb, ub)
    }

    /// The tail proportion interval `[p_lb, p_ub]` of one subset: the widest
    /// combination of its two neighbouring samples' deflated limits. A missing
    /// neighbour contributes the uninformative end (`0` below, `1` above).
    fn subset_limits(&self, subset: usize, confidence: f64) -> (f64, f64) {
        let key = (subset, confidence.to_bits());
        if let Some(&cached) = self.limits.borrow().get(&key) {
            return cached;
        }
        let cp_confidence = Self::one_sided(confidence);
        let tail = self.subsets[subset];
        let (mut lb, mut ub) = (f64::INFINITY, f64::NEG_INFINITY);
        for neighbour in [tail.left, tail.right].into_iter().flatten() {
            let (l, u) = self.neighbour_limits(neighbour, cp_confidence);
            lb = lb.min(l);
            ub = ub.max(u);
        }
        if !lb.is_finite() {
            lb = 0.0;
        }
        if !ub.is_finite() {
            ub = 1.0;
        }
        let result = (lb, ub);
        self.limits.borrow_mut().insert(key, result);
        result
    }
}

impl<E: MatchCountEstimator> MatchCountEstimator for CalibratedEstimator<E> {
    fn pair_count(&self, range: std::ops::Range<usize>) -> usize {
        self.base.pair_count(range)
    }

    fn estimate(&self, range: std::ops::Range<usize>) -> f64 {
        self.base.estimate(range)
    }

    fn lower_bound(&self, range: std::ops::Range<usize>, confidence: f64) -> f64 {
        let base = self.base.lower_bound(range.clone(), confidence);
        if !self.config.enabled || !self.config.calibrate_lower {
            return base;
        }
        let m = self.subsets.len();
        let (lo, hi) = (range.start.min(m), range.end.min(m));
        let mut tail = 0.0;
        for i in lo..hi {
            let (p_lb, _) = self.subset_limits(i, confidence);
            tail += self.subsets[i].size * p_lb;
        }
        base.min(tail).max(0.0)
    }

    fn upper_bound(&self, range: std::ops::Range<usize>, confidence: f64) -> f64 {
        let base = self.base.upper_bound(range.clone(), confidence);
        if !self.config.enabled {
            return base;
        }
        let count = self.pair_count(range.clone()) as f64;
        (base + self.quiet_shortfall(&range, confidence)).min(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy base estimator with a fixed per-subset proportion and a
    /// zero-width interval — the worst case the calibration must widen.
    #[derive(Debug, Clone)]
    struct PointEstimator {
        sizes: Vec<usize>,
        proportions: Vec<f64>,
    }

    impl MatchCountEstimator for PointEstimator {
        fn pair_count(&self, range: std::ops::Range<usize>) -> usize {
            self.sizes[range].iter().sum()
        }
        fn estimate(&self, range: std::ops::Range<usize>) -> f64 {
            range.map(|i| self.sizes[i] as f64 * self.proportions[i]).sum()
        }
        fn lower_bound(&self, range: std::ops::Range<usize>, _c: f64) -> f64 {
            self.estimate(range)
        }
        fn upper_bound(&self, range: std::ops::Range<usize>, _c: f64) -> f64 {
            self.estimate(range)
        }
    }

    fn all_zero_setup(
        m: usize,
    ) -> (PointEstimator, Vec<usize>, Vec<f64>, BTreeMap<usize, SampleSummary>) {
        let sizes = vec![200usize; m];
        let inputs: Vec<f64> = (0..m).map(|i| i as f64 / m as f64).collect();
        let base = PointEstimator { sizes: sizes.clone(), proportions: vec![0.0; m] };
        // Sample every fourth subset, all observations negative.
        let mut samples = BTreeMap::new();
        for i in (0..m).step_by(4) {
            samples.insert(i, SampleSummary::new(100, 0).unwrap());
        }
        (base, sizes, inputs, samples)
    }

    #[test]
    fn all_zero_samples_still_produce_a_detection_limit_upper_bound() {
        let (base, sizes, inputs, samples) = all_zero_setup(40);
        let est = CalibratedEstimator::new(
            base,
            &sizes,
            &inputs,
            &samples,
            0.25,
            TailCalibration::default(),
        );
        // The uncalibrated upper bound is exactly zero; the calibrated one must
        // allow at least the pooled detection limit of the 10 × 100 quiet
        // draws, yet stay far below "everything matches".
        let ub = est.upper_bound(0..40, 0.95);
        assert!(ub > 10.0, "detection-limit upper bound missing: {ub}");
        assert!(ub < 0.05 * est.pair_count(0..40) as f64, "tail bound absurdly wide: {ub}");
        // Lower bounds stay at zero (no positives anywhere).
        assert_eq!(est.lower_bound(0..40, 0.95), 0.0);
    }

    #[test]
    fn shortfall_only_tops_up_what_the_base_already_allows() {
        let (mut base, sizes, inputs, samples) = all_zero_setup(40);
        // A base estimator that already assigns generous mass to the quiet
        // region must not be widened further.
        base.proportions = vec![0.1; 40];
        let generous = CalibratedEstimator::new(
            base.clone(),
            &sizes,
            &inputs,
            &samples,
            0.25,
            TailCalibration::default(),
        );
        let expected = base.upper_bound(0..40, 0.95);
        assert!((generous.upper_bound(0..40, 0.95) - expected).abs() < 1e-9);
    }

    #[test]
    fn calibration_never_narrows_the_base_interval() {
        let (mut base, sizes, inputs, mut samples) = all_zero_setup(32);
        // Mix in some positives so non-quiet samples and lower limits are
        // exercised too.
        for (i, p) in base.proportions.iter_mut().enumerate() {
            *p = i as f64 / 32.0;
        }
        for (i, s) in samples.iter_mut() {
            *s = SampleSummary::new(100, (100 * i) / 32).unwrap();
        }
        let est = CalibratedEstimator::new(
            base.clone(),
            &sizes,
            &inputs,
            &samples,
            0.25,
            TailCalibration { calibrate_lower: true, ..TailCalibration::default() },
        );
        for lo in [0usize, 5, 16] {
            for hi in [17usize, 25, 32] {
                for conf in [0.5, 0.9, 0.949] {
                    let b_lb = base.lower_bound(lo..hi, conf);
                    let b_ub = base.upper_bound(lo..hi, conf);
                    assert!(est.lower_bound(lo..hi, conf) <= b_lb + 1e-9);
                    assert!(
                        est.upper_bound(lo..hi, conf)
                            >= b_ub.min(est.pair_count(lo..hi) as f64) - 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn disabled_calibration_is_transparent() {
        let (base, sizes, inputs, samples) = all_zero_setup(24);
        let est = CalibratedEstimator::new(
            base.clone(),
            &sizes,
            &inputs,
            &samples,
            0.25,
            TailCalibration::disabled(),
        );
        for range in [0..24usize, 3..9, 12..24] {
            assert_eq!(est.upper_bound(range.clone(), 0.9), base.upper_bound(range.clone(), 0.9));
            assert_eq!(est.lower_bound(range.clone(), 0.9), base.lower_bound(range, 0.9));
        }
    }

    #[test]
    fn sparser_samples_widen_the_tail_bound() {
        let m = 20usize;
        let sizes = vec![200usize; m];
        let inputs: Vec<f64> = (0..m).map(|i| i as f64 / m as f64).collect();
        let base = PointEstimator { sizes: sizes.clone(), proportions: vec![0.0; m] };
        let config = TailCalibration { distance_strength: 2.0, ..TailCalibration::default() };
        // Dense: a quiet sample every other subset. Sparse: only the two ends,
        // so the same pooled evidence sits much further from the middle.
        let mut dense = BTreeMap::new();
        for i in (0..m).step_by(2) {
            dense.insert(i, SampleSummary::new(100, 0).unwrap());
        }
        let mut sparse = BTreeMap::new();
        sparse.insert(0usize, SampleSummary::new(100, 0).unwrap());
        sparse.insert(m - 1, SampleSummary::new(100, 0).unwrap());
        let dense_est =
            CalibratedEstimator::new(base.clone(), &sizes, &inputs, &dense, 0.05, config);
        let sparse_est = CalibratedEstimator::new(base, &sizes, &inputs, &sparse, 0.05, config);
        let dense_ub = dense_est.upper_bound(0..m, 0.95);
        let sparse_ub = sparse_est.upper_bound(0..m, 0.95);
        // The sparse configuration pools fewer draws *and* extrapolates them
        // further, so per pair its limit must be wider. (Dense pools 10× the
        // draws; compare per-draw to isolate the distance effect.)
        assert!(
            sparse_ub > dense_ub,
            "sparser, further samples must yield a wider bound ({sparse_ub} vs {dense_ub})"
        );
    }

    #[test]
    fn higher_confidence_widens_the_calibrated_upper_bound() {
        let (base, sizes, inputs, samples) = all_zero_setup(40);
        let est = CalibratedEstimator::new(
            base,
            &sizes,
            &inputs,
            &samples,
            0.25,
            TailCalibration::default(),
        );
        let narrow = est.upper_bound(0..40, 0.5);
        let wide = est.upper_bound(0..40, 0.99);
        assert!(wide > narrow);
    }

    #[test]
    fn loud_samples_break_quiet_runs() {
        let m = 30usize;
        let sizes = vec![100usize; m];
        let inputs: Vec<f64> = (0..m).map(|i| i as f64 / m as f64).collect();
        let base = PointEstimator { sizes: sizes.clone(), proportions: vec![0.0; m] };
        let mut samples = BTreeMap::new();
        for i in (0..m).step_by(3) {
            samples.insert(i, SampleSummary::new(100, 0).unwrap());
        }
        // A decidedly non-quiet sample in the middle.
        samples.insert(15usize, SampleSummary::new(100, 60).unwrap());
        let est = CalibratedEstimator::new(
            base,
            &sizes,
            &inputs,
            &samples,
            0.1,
            TailCalibration::default(),
        );
        // Subsets informed by the loud sample get no quiet-run shortfall: the
        // base estimator (zero-width here) is left alone.
        let near_loud = est.upper_bound(15..16, 0.95);
        assert_eq!(near_loud, 0.0, "loud-informed subsets must not be topped up");
        // Far from the loud sample the quiet run still applies.
        assert!(est.upper_bound(0..6, 0.95) > 0.0);
    }

    #[test]
    fn fully_sampled_subsets_use_their_own_limits() {
        let sizes = vec![100usize; 4];
        let inputs = vec![0.0, 0.33, 0.66, 1.0];
        let base = PointEstimator { sizes: sizes.clone(), proportions: vec![0.5; 4] };
        let mut samples = BTreeMap::new();
        for i in 0..4usize {
            samples.insert(i, SampleSummary::new(50, 25).unwrap());
        }
        let est = CalibratedEstimator::new(
            base,
            &sizes,
            &inputs,
            &samples,
            0.3,
            TailCalibration { calibrate_lower: true, ..TailCalibration::default() },
        );
        // Every subset sampled at distance zero with mixed outcomes: no quiet
        // runs, so the upper bound is the base one; the opt-in lower
        // calibration applies the stratum's own CP lower limit.
        let ub = est.upper_bound(1..2, 0.9);
        let lb = est.lower_bound(1..2, 0.9);
        assert_eq!(ub, 50.0);
        assert!(lb < 50.0, "CP lower limit must fall below the estimate ({lb})");
        assert!(lb > 25.0, "own-sample CP lower limit far too wide ({lb})");
    }
}
