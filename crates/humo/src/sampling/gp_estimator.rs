//! Gaussian-process match-count estimator over subset unions (Eq. 15–21).

use super::estimator::MatchCountEstimator;
use crate::{HumoError, Result};
use er_core::workload::SubsetPartition;
use er_stats::{GaussianProcess, GpConfig, Normal, SampleSummary};
use std::collections::BTreeMap;

/// Match-count estimator backed by a Gaussian-process regression of the
/// match-proportion function.
///
/// The GP is trained on `(mean similarity, sampled match proportion)` points of
/// the sampled subsets, then evaluated jointly at *every* subset's mean
/// similarity. For a union of subsets `D*` the estimated number of matches is
/// `n̄* = Σ nᵢ R̄ᵢ` (Eq. 19) with standard deviation
/// `σ* = sqrt(Σᵢⱼ nᵢ nⱼ cov(vᵢ, vⱼ))` (Eq. 20), and the confidence interval uses
/// the normal critical value `Z₁₋θ` (Eq. 21).
///
/// Range queries are O(1) thanks to precomputed prefix sums of the weighted
/// means and a 2-D prefix table of the weighted posterior covariance.
#[derive(Debug, Clone)]
pub struct GpCountEstimator {
    /// Prefix sums of subset sizes.
    size_prefix: Vec<usize>,
    /// Prefix sums of `nᵢ · R̄ᵢ` (clamped means).
    mean_prefix: Vec<f64>,
    /// 2-D prefix table of `nᵢ nⱼ cov(vᵢ, vⱼ)`, dimension `(m+1)²`, row-major.
    cov_prefix: Vec<f64>,
    /// Number of subsets `m`.
    m: usize,
}

impl GpCountEstimator {
    /// Fits a GP to the sampled subsets and precomputes the range-query tables.
    ///
    /// `samples` maps subset index → sample summary; at least two subsets must be
    /// sampled.
    pub fn fit(
        partition: &SubsetPartition,
        samples: &BTreeMap<usize, SampleSummary>,
        gp_config: GpConfig,
    ) -> Result<Self> {
        if samples.len() < 2 {
            return Err(HumoError::Stats(
                "Gaussian-process estimation needs at least two sampled subsets".to_string(),
            ));
        }
        let train_x: Vec<f64> =
            samples.keys().map(|&i| partition.subset(i).mean_similarity()).collect();
        let train_y: Vec<f64> = samples.values().map(|s| s.proportion()).collect();
        let gp = GaussianProcess::fit(&train_x, &train_y, gp_config)?;
        Ok(Self::from_gp(partition, &gp))
    }

    /// Builds the estimator from an already-fitted GP (used by Algorithm 1, which
    /// refits the GP several times before the final bound search).
    ///
    /// The per-subset prediction variance combines the GP posterior covariance
    /// (uncertainty about the smooth match-proportion *curve*) with the GP's
    /// observation-noise variance (per-subset idiosyncratic deviation from that
    /// curve plus within-subset sampling error), added independently on the
    /// diagonal. Without the noise term the count bounds become overconfident on
    /// workloads with irregular per-subset proportions (the paper's large-σ
    /// regime, Figure 10).
    pub fn from_gp(partition: &SubsetPartition, gp: &GaussianProcess) -> Self {
        let noise = gp.noise_variance().max(0.0);
        let query: Vec<f64> = partition.subsets().iter().map(|s| s.mean_similarity()).collect();
        Self::with_noise_model(partition, gp, &query, move |_, _, _| noise)
    }

    /// Builds the estimator with explicit per-subset GP inputs and an explicit
    /// per-subset noise model.
    ///
    /// `query_inputs[i]` is the GP input coordinate of subset `i` (the partial
    /// sampling optimizer uses the subset's mean similarity, so distances and
    /// the GP length scale live in similarity space `[0, 1]`).
    /// `noise_for(i, p, var)` returns the independent per-subset
    /// deviation variance for subset `i` whose predicted match proportion is `p`
    /// and whose GP posterior variance is `var`; the partial-sampling optimizer
    /// uses the binomial-style model `c · p(1−p)` (with a small floor on `p`)
    /// plus a distance-dependent posterior inflation term derived from `var`.
    pub fn with_noise_model(
        partition: &SubsetPartition,
        gp: &GaussianProcess,
        query_inputs: &[f64],
        noise_for: impl Fn(usize, f64, f64) -> f64,
    ) -> Self {
        let m = partition.len();
        assert_eq!(query_inputs.len(), m, "one GP input per subset is required");
        let posterior = gp.predict_joint(query_inputs);
        let sizes: Vec<usize> = partition.subsets().iter().map(|s| s.len()).collect();

        let mut size_prefix = vec![0usize; m + 1];
        let mut mean_prefix = vec![0.0f64; m + 1];
        for i in 0..m {
            size_prefix[i + 1] = size_prefix[i] + sizes[i];
            let clamped_mean = posterior.mean[i].clamp(0.0, 1.0);
            mean_prefix[i + 1] = mean_prefix[i] + sizes[i] as f64 * clamped_mean;
        }

        // cov_prefix[a * (m+1) + b] = Σ_{i<a, j<b} nᵢ nⱼ cov(vᵢ, vⱼ).
        let stride = m + 1;
        let mut cov_prefix = vec![0.0f64; stride * stride];
        for a in 1..=m {
            let wa = sizes[a - 1] as f64;
            for b in 1..=m {
                let wb = sizes[b - 1] as f64;
                let mut cell = posterior.covariance[(a - 1, b - 1)];
                if a == b {
                    let variance = cell.max(0.0);
                    cell +=
                        noise_for(a - 1, posterior.mean[a - 1].clamp(0.0, 1.0), variance).max(0.0);
                }
                let weighted = wa * wb * cell;
                cov_prefix[a * stride + b] = cov_prefix[(a - 1) * stride + b]
                    + cov_prefix[a * stride + (b - 1)]
                    - cov_prefix[(a - 1) * stride + (b - 1)]
                    + weighted;
            }
        }

        Self { size_prefix, mean_prefix, cov_prefix, m }
    }

    /// Number of subsets covered by the estimator.
    pub fn num_subsets(&self) -> usize {
        self.m
    }

    /// Standard deviation of the match-count estimate for a subset range (Eq. 20).
    pub fn std_dev(&self, range: std::ops::Range<usize>) -> f64 {
        let (lo, hi) = (range.start.min(self.m), range.end.min(self.m));
        if lo >= hi {
            return 0.0;
        }
        let stride = self.m + 1;
        let at = |a: usize, b: usize| self.cov_prefix[a * stride + b];
        let variance = at(hi, hi) - 2.0 * at(lo, hi) + at(lo, lo);
        variance.max(0.0).sqrt()
    }

    fn critical_value(confidence: f64) -> f64 {
        if confidence <= 0.0 {
            0.0
        } else {
            Normal::two_sided_critical_value(confidence).unwrap_or(0.0)
        }
    }
}

impl MatchCountEstimator for GpCountEstimator {
    fn pair_count(&self, range: std::ops::Range<usize>) -> usize {
        let (lo, hi) = (range.start.min(self.m), range.end.min(self.m));
        if lo >= hi {
            0
        } else {
            self.size_prefix[hi] - self.size_prefix[lo]
        }
    }

    fn estimate(&self, range: std::ops::Range<usize>) -> f64 {
        let (lo, hi) = (range.start.min(self.m), range.end.min(self.m));
        if lo >= hi {
            0.0
        } else {
            self.mean_prefix[hi] - self.mean_prefix[lo]
        }
    }

    fn lower_bound(&self, range: std::ops::Range<usize>, confidence: f64) -> f64 {
        let z = Self::critical_value(confidence);
        (self.estimate(range.clone()) - z * self.std_dev(range)).max(0.0)
    }

    fn upper_bound(&self, range: std::ops::Range<usize>, confidence: f64) -> f64 {
        let z = Self::critical_value(confidence);
        let count = self.pair_count(range.clone()) as f64;
        (self.estimate(range.clone()) + z * self.std_dev(range)).min(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::workload::Workload;
    use er_stats::SampleSummary;

    /// Workload whose match proportion rises linearly with similarity.
    fn linear_workload(n: usize) -> Workload {
        Workload::from_scores((0..n).map(|i| {
            let sim = i as f64 / n as f64;
            // Deterministic "pseudo random" labelling with proportion ≈ sim.
            let is_match = (i * 7919 % 1000) as f64 / 1000.0 < sim;
            (sim, is_match)
        }))
        .unwrap()
    }

    fn sample_exact(
        w: &Workload,
        partition: &SubsetPartition,
        every: usize,
    ) -> BTreeMap<usize, SampleSummary> {
        let mut samples = BTreeMap::new();
        for (i, s) in partition.subsets().iter().enumerate() {
            if i % every == 0 || i + 1 == partition.len() {
                let positives = w.matches_in_range(s.range());
                samples.insert(i, SampleSummary::new(s.len(), positives).unwrap());
            }
        }
        samples
    }

    #[test]
    fn estimates_track_the_true_match_counts() {
        let w = linear_workload(10_000);
        let partition = w.partition(200).unwrap();
        let samples = sample_exact(&w, &partition, 5);
        let est = GpCountEstimator::fit(&partition, &samples, GpConfig::default()).unwrap();
        let m = partition.len();
        let truth = w.total_matches() as f64;
        let predicted = est.estimate(0..m);
        assert!(
            (predicted - truth).abs() / truth < 0.1,
            "GP estimate {predicted} too far from truth {truth}"
        );
        // Bounds bracket the estimate and respect physical limits.
        assert!(est.lower_bound(0..m, 0.9) <= predicted);
        assert!(est.upper_bound(0..m, 0.9) >= predicted);
        assert!(est.lower_bound(0..m, 0.9) >= 0.0);
        assert!(est.upper_bound(0..m, 0.9) <= w.len() as f64);
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // degenerate ranges are part of the contract
    fn range_queries_are_additive_in_the_mean() {
        let w = linear_workload(6_000);
        let partition = w.partition(200).unwrap();
        let samples = sample_exact(&w, &partition, 4);
        let est = GpCountEstimator::fit(&partition, &samples, GpConfig::default()).unwrap();
        let m = partition.len();
        let whole = est.estimate(0..m);
        let split = est.estimate(0..m / 2) + est.estimate(m / 2..m);
        assert!((whole - split).abs() < 1e-6);
        assert_eq!(est.pair_count(0..m), 6_000);
        assert_eq!(est.pair_count(3..3), 0);
        assert_eq!(est.estimate(5..2), 0.0);
    }

    #[test]
    fn wider_confidence_gives_wider_bounds() {
        let w = linear_workload(6_000);
        let partition = w.partition(200).unwrap();
        let samples = sample_exact(&w, &partition, 6);
        let est = GpCountEstimator::fit(&partition, &samples, GpConfig::default()).unwrap();
        let m = partition.len();
        let narrow = est.upper_bound(0..m, 0.6) - est.lower_bound(0..m, 0.6);
        let wide = est.upper_bound(0..m, 0.99) - est.lower_bound(0..m, 0.99);
        assert!(wide >= narrow);
    }

    #[test]
    fn zero_confidence_collapses_to_the_point_estimate() {
        let w = linear_workload(4_000);
        let partition = w.partition(200).unwrap();
        let samples = sample_exact(&w, &partition, 4);
        let est = GpCountEstimator::fit(&partition, &samples, GpConfig::default()).unwrap();
        let m = partition.len();
        assert!((est.lower_bound(0..m, 0.0) - est.estimate(0..m)).abs() < 1e-9);
        assert!((est.upper_bound(0..m, 0.0) - est.estimate(0..m)).abs() < 1e-9);
    }

    #[test]
    fn needs_at_least_two_sampled_subsets() {
        let w = linear_workload(2_000);
        let partition = w.partition(200).unwrap();
        let mut samples = BTreeMap::new();
        samples.insert(0usize, SampleSummary::new(10, 1).unwrap());
        assert!(GpCountEstimator::fit(&partition, &samples, GpConfig::default()).is_err());
    }

    #[test]
    fn std_dev_is_zero_for_empty_ranges_and_nonnegative_otherwise() {
        let w = linear_workload(4_000);
        let partition = w.partition(200).unwrap();
        let samples = sample_exact(&w, &partition, 3);
        let est = GpCountEstimator::fit(&partition, &samples, GpConfig::default()).unwrap();
        assert_eq!(est.std_dev(7..7), 0.0);
        for lo in 0..partition.len() {
            assert!(est.std_dev(lo..partition.len()) >= 0.0);
        }
    }
}
