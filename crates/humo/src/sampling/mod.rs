//! Sampling-based optimizers (Section VI of the paper).
//!
//! Both optimizers divide the workload into equal-count, similarity-ordered
//! subsets and reason about the number of matching pairs in *unions of subsets*:
//!
//! * [`AllSamplingOptimizer`] samples every subset and aggregates the per-subset
//!   estimates with stratified-sampling theory (Section VI-A, Eq. 12–14);
//! * [`PartialSamplingOptimizer`] — the paper's "SAMP" — samples only a small
//!   fraction of the subsets, approximates the match-proportion function with a
//!   Gaussian process (Algorithm 1), and derives bounds from the GP posterior
//!   (Section VI-B, Eq. 15–21).
//!
//! The two share the bound-search procedure (first fix `DH`'s lower bound to meet
//! the recall requirement, then its upper bound to meet precision), expressed
//! over a [`MatchCountEstimator`] so the same search drives both estimators.

mod all;
mod calibrated;
mod estimator;
mod gp_estimator;
mod partial;
mod sampler;
mod warm;

pub use all::{AllSamplingConfig, AllSamplingOptimizer};
pub(crate) use calibrated::{censored_proportion_lower, censored_proportion_upper};
pub use calibrated::{CalibratedEstimator, ShortfallBaseline, TailCalibration};
pub use estimator::{search_subset_bounds, MatchCountEstimator, StratifiedCountEstimator};
pub use gp_estimator::GpCountEstimator;
pub(crate) use partial::GpTrainingState;
pub use partial::{
    PartialSamplingConfig, PartialSamplingOptimizer, RefitStrategy, SamplingPlan, SELECTION_WARMUP,
};
pub use sampler::SubsetSampler;
pub use warm::{PriorObservation, WarmStart};
