//! Warm-starting the sampling-based optimizers from a previous solution.
//!
//! In a streaming setting the same workload is re-optimized every time a batch
//! of records arrives. Re-running SAMP from scratch re-samples the
//! match-proportion curve through the human oracle even though the curve —
//! a property of the data distribution, keyed by similarity — barely moves
//! between epochs. A [`WarmStart`] captures the previous run's sampled
//! observations (and the previous human-region interval) *in similarity space*,
//! so the next run can seed its Gaussian process from them without issuing new
//! oracle queries: fresh samples are only drawn where the previous run never
//! looked or where Algorithm 1's refinement detects disagreement.
//!
//! The warm-started run still certifies its bounds against the current
//! workload's partition; reusing an observation only asserts that the match
//! proportion *at that similarity* is what the previous epoch measured. That is
//! exact for unchanged data and a tight approximation when inserted records
//! follow the same distribution (the `pipeline_throughput` harness measures the
//! resulting oracle-query saving and checks that requirement compliance is
//! unchanged).

use er_stats::SampleSummary;

/// One reusable observation from a previous run: a manually sampled match
/// proportion at a similarity coordinate (the sampled subset's mean
/// similarity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorObservation {
    /// Similarity coordinate of the observation.
    pub similarity: f64,
    /// Number of manually labeled pairs behind the observation.
    pub sample_size: usize,
    /// Number of matches among them.
    pub positives: usize,
}

impl PriorObservation {
    /// The observed match proportion.
    pub fn proportion(&self) -> f64 {
        if self.sample_size == 0 {
            0.0
        } else {
            self.positives as f64 / self.sample_size as f64
        }
    }

    /// The observation as a sample summary, or `None` when the observation is
    /// malformed (`positives > sample_size` — possible for hand-built or
    /// deserialized warm-start state, which must be skipped, not trusted).
    pub(crate) fn summary(&self) -> Option<SampleSummary> {
        SampleSummary::new(self.sample_size, self.positives).ok()
    }
}

/// Prior knowledge carried from a previous optimization run, used to seed the
/// next run's estimation phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarmStart {
    /// The previous run's observations, one per sampled subset.
    pub observations: Vec<PriorObservation>,
    /// The similarity interval `[v⁻, v⁺]` of the previous human region, if it
    /// was non-empty. The warm-started run always re-anchors fresh or prior
    /// observations at these boundaries — they are where the bound search is
    /// most sensitive.
    pub human_interval: Option<(f64, f64)>,
}

impl WarmStart {
    /// Whether the warm start carries no reusable observations.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Number of reusable observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportion_handles_degenerate_sample_sizes() {
        let obs = PriorObservation { similarity: 0.5, sample_size: 0, positives: 0 };
        assert_eq!(obs.proportion(), 0.0);
        let obs = PriorObservation { similarity: 0.5, sample_size: 20, positives: 5 };
        assert!((obs.proportion() - 0.25).abs() < 1e-12);
        assert_eq!(obs.summary().unwrap().sample_size, 20);
        // Malformed observations surface as None instead of panicking.
        let bad = PriorObservation { similarity: 0.5, sample_size: 5, positives: 9 };
        assert!(bad.summary().is_none());
    }

    #[test]
    fn default_warm_start_is_empty() {
        let warm = WarmStart::default();
        assert!(warm.is_empty());
        assert_eq!(warm.len(), 0);
        assert!(warm.human_interval.is_none());
    }
}
