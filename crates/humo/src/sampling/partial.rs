//! The partial-sampling optimizer — the paper's "SAMP" (Section VI-B, Algorithm 1).
//!
//! Instead of sampling every subset, SAMP samples only a small, adaptively chosen
//! fraction of them (a budget range `[p_l, p_u]` of the subset count, 1–5 % in the
//! paper) and approximates the match-proportion function everywhere else by
//! Gaussian-process regression:
//!
//! 1. sample `m·p_l` equidistant subsets and fit a GP;
//! 2. repeatedly look at the midpoint between two adjacent sampled subsets; if the
//!    GP's prediction there disagrees with a fresh sample by more than `ε`, keep
//!    refining that region (Algorithm 1), until the budget `m·p_u` is exhausted or
//!    every gap is well approximated;
//! 3. run the bound search of Section VI over the GP posterior (Eq. 19–21).

use super::calibrated::{CalibratedEstimator, TailCalibration};
use super::estimator::search_subset_bounds;
use super::gp_estimator::GpCountEstimator;
use super::sampler::{SamplerSnapshot, SubsetSampler};
use super::warm::{PriorObservation, WarmStart};
use crate::optimizer::Optimizer;
use crate::oracle::Oracle;
use crate::requirement::QualityRequirement;
use crate::session::{
    drive_with_oracle, verified_assignment, CoreOutput, Drive, LabelSlate, LabelingSession,
    ReplayCache, SessionConfig,
};
use crate::solution::{HumoSolution, OptimizationOutcome};
use crate::{HumoError, Result};
use er_core::workload::{SubsetPartition, Workload};
use er_stats::{GaussianProcess, GpConfig, SampleSummary};
use std::collections::{BTreeMap, VecDeque};

/// Configuration of the SAMP optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialSamplingConfig {
    /// The quality requirement to enforce.
    pub requirement: QualityRequirement,
    /// Number of pairs per similarity-ordered subset (the paper uses 200).
    pub unit_size: usize,
    /// Number of pairs sampled (and manually labeled) from each sampled subset.
    pub samples_per_subset: usize,
    /// Sampling budget `[p_l, p_u]` as fractions of the subset count
    /// (the paper uses `[0.01, 0.05]`).
    pub sampling_range: (f64, f64),
    /// Approximation error threshold `ε` of Algorithm 1.
    pub gp_error_threshold: f64,
    /// Noise treatment for the GP bounds.
    ///
    /// * `false` (default, paper-faithful): sampled match proportions are treated
    ///   as exact interpolation points and the count bounds use the pure GP
    ///   posterior covariance of Eq. 20–21. This reproduces the paper's human
    ///   costs; its confidence statement leans on the smoothness of the
    ///   match-proportion curve.
    /// * `true` (conservative): per-subset binomial sampling error and a
    ///   data-calibrated idiosyncratic scatter term are added to the GP noise and
    ///   to the count variance. Bounds become statistically safer but noticeably
    ///   wider, so the human region grows (see the `ablation_noise_model` bench).
    pub conservative_noise: bool,
    /// Tail calibration of the count bounds (binomial detection limits plus
    /// distance-dependent posterior inflation). Enabled by default; disabling it
    /// reproduces the pre-calibration bounds that under-cover recall on flat
    /// match-proportion curves.
    pub tail_calibration: TailCalibration,
    /// How the GP is refreshed after each refinement probe — a pure
    /// performance knob, see [`RefitStrategy`].
    pub refit: RefitStrategy,
    /// RNG seed for within-subset sampling.
    pub seed: u64,
}

/// How the match-proportion GP is refreshed after each refinement probe of
/// Algorithm 1.
///
/// Hyperparameter *selection* (the length-scale search induced by
/// [`PartialSamplingConfig::gp_config_for`]) runs on the same schedule under
/// both strategies: per probe while the training set is small (up to
/// [`SELECTION_WARMUP`] points — selection costs microseconds there and every
/// point moves the hyperparameters), and past the warm-up whenever a probe
/// disagrees with the GP prediction by at least the error threshold (a
/// surprise is evidence the pinned hyperparameters no longer describe the
/// curve), whenever the training set has doubled since the last selection,
/// and once more on the final training set if probes were absorbed since.
/// Between
/// selections the strategies differ only in how the covariance factorization
/// is updated — [`RefitStrategy::Incremental`] appends rows to the existing
/// Cholesky factor in O(n²) per probe
/// ([`GaussianProcess::extend_with_noise`]), while [`RefitStrategy::Full`]
/// re-factorizes from scratch in O(n³) with the same pinned hyperparameters.
/// The two produce bit-identical posteriors, and therefore bit-identical
/// labels, bounds and costs; `Full` exists as the reference arm for the
/// equivalence tests and the bench trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefitStrategy {
    /// Extend the existing factorization in O(n²) per probe (the default).
    #[default]
    Incremental,
    /// Re-factorize from scratch per probe with pinned hyperparameters.
    Full,
}

/// Training-set size up to which hyperparameter selection reruns after every
/// refinement probe. Below this the candidate search is effectively free and
/// each new point still moves the selected hyperparameters noticeably;
/// pinning them only pays off once the O(candidates · n³) search dominates
/// the O(n²) factor extension.
pub const SELECTION_WARMUP: usize = 32;

impl PartialSamplingConfig {
    /// Creates a configuration with the paper's defaults.
    pub fn new(requirement: QualityRequirement) -> Self {
        Self {
            requirement,
            unit_size: 200,
            samples_per_subset: 100,
            sampling_range: (0.01, 0.05),
            gp_error_threshold: 0.05,
            conservative_noise: false,
            tail_calibration: TailCalibration::default(),
            refit: RefitStrategy::Incremental,
            seed: 1,
        }
    }

    /// Returns a copy with a different seed (used to average over runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The `[min, max]` number of subsets Algorithm 1 may sample on a workload
    /// of `num_subsets` subsets under this configuration: the percentage
    /// budgets `[p_l, p_u]` of the paper, with hard floors (5 and 20 subsets)
    /// that keep the GP well-constrained on small workloads. External
    /// consumers (e.g. the `pipeline_throughput` round-trip bound) should use
    /// this instead of mirroring the formula.
    pub fn subset_budget(&self, num_subsets: usize) -> (usize, usize) {
        let m = num_subsets;
        let (pl, pu) = self.sampling_range;
        let min_subsets = ((m as f64 * pl).ceil() as usize).max(5).min(m);
        let max_subsets = ((m as f64 * pu).ceil() as usize).max(20).clamp(min_subsets, m);
        (min_subsets, max_subsets)
    }

    fn validate(&self) -> Result<()> {
        if self.unit_size == 0 {
            return Err(HumoError::InvalidConfig("unit size must be positive".to_string()));
        }
        if self.samples_per_subset == 0 {
            return Err(HumoError::InvalidConfig(
                "samples per subset must be positive".to_string(),
            ));
        }
        let (pl, pu) = self.sampling_range;
        if !(0.0..=1.0).contains(&pl) || !(0.0..=1.0).contains(&pu) || pl > pu || pu == 0.0 {
            return Err(HumoError::InvalidConfig(format!(
                "sampling range must satisfy 0 <= p_l <= p_u <= 1 and p_u > 0, got ({pl}, {pu})"
            )));
        }
        if self.gp_error_threshold <= 0.0 || !self.gp_error_threshold.is_finite() {
            return Err(HumoError::InvalidConfig(
                "GP error threshold must be positive".to_string(),
            ));
        }
        Ok(())
    }

    /// The GP configuration induced by this optimizer configuration and the
    /// observed training targets.
    ///
    /// * the signal variance is scaled to the spread of the observed match
    ///   proportions (a constant-mean GP must be able to swing across the whole
    ///   curve);
    /// * the observation noise reflects the average binomial sampling error of the
    ///   per-subset samples, which is what Eq. 18 of the paper models.
    pub fn gp_config_for(&self, observed_proportions: &[f64]) -> GpConfig {
        let k = self.samples_per_subset as f64;
        let mean_binomial_variance = if observed_proportions.is_empty() {
            0.25 / k
        } else {
            observed_proportions.iter().map(|p| p * (1.0 - p) / k).sum::<f64>()
                / observed_proportions.len() as f64
        };
        let spread = er_stats::sample_variance(observed_proportions);
        // The constant-mean GP must be able to swing across the whole observed
        // range of the curve; a signal variance of (range/2)² keeps values near
        // the extremes within one prior standard deviation of the mean.
        let range = match (
            er_stats::descriptive::min(observed_proportions),
            er_stats::descriptive::max(observed_proportions),
        ) {
            (Some(lo), Some(hi)) => hi - lo,
            _ => 1.0,
        };
        GpConfig {
            signal_variance: (1.5 * spread).max(0.25 * range * range).max(0.02),
            length_scale: None,
            noise_variance: mean_binomial_variance.max(1e-4),
            optimize_length_scale: true,
            // Held-out error is more robust than the marginal likelihood when many
            // observed proportions are exactly 0 or 1 (their sampling noise is then
            // severely understated, which skews the likelihood).
            selection: er_stats::gp::LengthScaleSelection::HeldOutError,
        }
    }
}

/// The result of SAMP's estimation phase, reused by the hybrid optimizer.
#[derive(Debug, Clone)]
pub struct SamplingPlan {
    /// The equal-count subset partition of the workload.
    pub partition: SubsetPartition,
    /// The GP-backed match-count estimator fitted by Algorithm 1, wrapped in
    /// the binomial tail calibration.
    pub estimator: CalibratedEstimator<GpCountEstimator>,
    /// The subset-index bounds `(lo, hi)` of the human region chosen by the bound
    /// search (half-open range over subsets).
    pub subset_bounds: (usize, usize),
    /// All observations the estimation phase trained on, one per covered
    /// subset: fresh samples keyed by their subset's mean similarity, reused
    /// priors keeping the coordinate they were originally sampled at. These
    /// seed the next epoch's warm start.
    pub observations: Vec<PriorObservation>,
}

impl SamplingPlan {
    /// Translates the subset bounds into a workload-index [`HumoSolution`].
    pub fn solution(&self, workload: &Workload) -> HumoSolution {
        let (lo, hi) = self.subset_bounds;
        let lower_index = if lo >= self.partition.len() {
            workload.len()
        } else {
            self.partition.subset(lo).range().start
        };
        let upper_index = if hi == 0 { 0 } else { self.partition.subset(hi - 1).range().end };
        HumoSolution::new(lower_index, upper_index.max(lower_index), workload.len())
    }

    /// Packages this plan's observations and human interval as a [`WarmStart`]
    /// for the next optimization of (a grown version of) the workload.
    pub fn warm_start(&self, workload: &Workload) -> WarmStart {
        WarmStart {
            observations: self.observations.clone(),
            human_interval: self.solution(workload).human_similarity_interval(workload),
        }
    }
}

/// A refinement probe of Algorithm 1 that suspended while waiting for its
/// sample's labels. `predicted` is the GP prediction taken *before* the
/// sample — the same value a from-scratch replay would recompute — so the
/// disagreement check runs unchanged on resumption.
#[derive(Debug, Clone)]
struct PendingProbe {
    a: usize,
    b: usize,
    x: usize,
    predicted: f64,
}

/// Suspended progress of Algorithm 1 (`train_match_proportion_gp`), stored in
/// the session's [`ReplayCache`] so the next step resumes the training loop
/// where it stopped instead of replaying it from scratch.
///
/// Only *derived* state lives here: resuming is byte-identical to a full
/// replay because subset draws are label-independent, the sampler's RNG state
/// is snapshotted exactly, and the answered-label map only ever grows (first
/// answer wins), so a replay would reconstruct precisely this state before
/// reaching the suspension point again.
#[derive(Debug, Clone)]
pub(crate) struct GpTrainingState {
    sampler: SamplerSnapshot,
    initial_done: bool,
    pending: Option<PendingProbe>,
    train_x: Vec<f64>,
    train_y: Vec<f64>,
    train_noise: Vec<f64>,
    gp: Option<GaussianProcess>,
    /// Training-set size at the last hyperparameter selection.
    selected_at: usize,
    used: BTreeMap<usize, SampleSummary>,
    prior_coords: BTreeMap<usize, f64>,
    priors_used: usize,
    observed: BTreeMap<usize, f64>,
    queue: VecDeque<(usize, usize)>,
    well_approximated: Vec<(usize, usize)>,
}

impl GpTrainingState {
    fn new(seed: u64) -> Self {
        Self {
            sampler: SamplerSnapshot::new(seed),
            initial_done: false,
            pending: None,
            train_x: Vec::new(),
            train_y: Vec::new(),
            train_noise: Vec::new(),
            gp: None,
            selected_at: 0,
            used: BTreeMap::new(),
            prior_coords: BTreeMap::new(),
            priors_used: 0,
            observed: BTreeMap::new(),
            queue: VecDeque::new(),
            well_approximated: Vec::new(),
        }
    }
}

/// The SAMP optimizer.
#[derive(Debug, Clone)]
pub struct PartialSamplingOptimizer {
    config: PartialSamplingConfig,
}

impl PartialSamplingOptimizer {
    /// Creates a SAMP optimizer, validating the configuration.
    pub fn new(config: PartialSamplingConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &PartialSamplingConfig {
        &self.config
    }

    /// Runs the estimation phase (Algorithm 1 plus the bound search) without
    /// resolving the workload. The hybrid optimizer builds on this.
    pub fn plan(&self, workload: &Workload, oracle: &mut dyn Oracle) -> Result<SamplingPlan> {
        self.plan_with_warm_start(workload, oracle, None)
    }

    /// Runs the estimation phase, optionally seeded with a [`WarmStart`] from a
    /// previous run.
    ///
    /// Prior observations whose similarity coordinate still falls onto a subset
    /// of the current partition are reused as GP training points *without*
    /// issuing oracle queries; fresh samples are only drawn for uncovered
    /// subsets and wherever Algorithm 1's refinement detects disagreement
    /// between the seeded GP and the data. Passing `None` (or an empty warm
    /// start) reproduces [`PartialSamplingOptimizer::plan`] exactly.
    pub fn plan_with_warm_start(
        &self,
        workload: &Workload,
        oracle: &mut dyn Oracle,
        warm: Option<&WarmStart>,
    ) -> Result<SamplingPlan> {
        drive_with_oracle(workload, oracle, |slate, cache| {
            self.plan_core(workload, slate, warm, cache)
        })
    }

    /// Starts a sans-I/O [`LabelingSession`](crate::LabelingSession) for this
    /// optimizer over the workload — the batched, resumable alternative to
    /// [`Optimizer::optimize`].
    pub fn session<'w>(&self, workload: &'w Workload) -> Result<LabelingSession<'w>> {
        LabelingSession::new(SessionConfig::PartialSampling(self.config), workload)
    }

    /// Starts a session seeded with warm-start state from a previous epoch's
    /// plan.
    pub fn session_with_warm_start<'w>(
        &self,
        workload: &'w Workload,
        warm: Option<WarmStart>,
    ) -> Result<LabelingSession<'w>> {
        LabelingSession::with_warm_start(
            SessionConfig::PartialSampling(self.config),
            workload,
            warm,
        )
    }

    /// The suspendable estimation phase backing both the session state machine
    /// and the oracle-driven [`PartialSamplingOptimizer::plan_with_warm_start`].
    ///
    /// A completed plan is memoized in the [`ReplayCache`]: SAMP's final
    /// verification round and HYBR's boundary-search rounds re-enter here on
    /// every step and get the cached plan back instead of re-running the
    /// whole estimation phase.
    pub(crate) fn plan_core(
        &self,
        workload: &Workload,
        slate: &LabelSlate<'_>,
        warm: Option<&WarmStart>,
        cache: &mut ReplayCache,
    ) -> Drive<SamplingPlan> {
        if let Some(plan) = cache.plan() {
            workload.obs().counter("session.replay_cache.plan_hits", 1);
            return Ok(plan.clone());
        }
        if workload.is_empty() {
            return Err(HumoError::InvalidWorkload(
                "cannot optimize an empty workload".to_string(),
            )
            .into());
        }
        let cfg = &self.config;
        let partition = cache.partition_or_compute(|| Ok(workload.partition(cfg.unit_size)?))?;
        let m = partition.len();

        let (gp, diagonal_scale, used, prior_coords) =
            self.train_match_proportion_gp(workload, &partition, slate, warm, cache)?;
        let query: Vec<f64> = partition.subsets().iter().map(|s| s.mean_similarity()).collect();
        // Independent per-subset variance: the calibrated scatter term (when the
        // workload exhibits scatter) plus a Poisson-style floor — the number of
        // matches in a subset predicted to have proportion p is at least as
        // uncertain as a Poisson count with mean n·p. The floor is what keeps the
        // recall bound honest in heavily diluted regions (match proportions below
        // the per-subset sampling detection limit) without widening the bounds in
        // the near-pure regions that dominate skewed workloads. On top of that,
        // subsets far from any sampled subset get their GP posterior variance
        // inflated with distance, so interpolation between sparse samples cannot
        // claim near-certainty.
        let unit = cfg.unit_size as f64;
        let detection_floor = 0.5 / cfg.samples_per_subset as f64;
        let tail = cfg.tail_calibration;
        let length_scale = gp.kernel().length_scale;
        let distances: Vec<f64> =
            query.iter().map(|&x| gp.distance_to_nearest_observation(x)).collect();
        let base = GpCountEstimator::with_noise_model(&partition, &gp, &query, |i, p, var| {
            let inflation = if tail.enabled {
                let factor = er_stats::posterior_inflation_factor(
                    distances[i],
                    length_scale,
                    tail.distance_strength,
                );
                (factor - 1.0) * var
            } else {
                0.0
            };
            diagonal_scale * Self::stabilized_spread(p) + p.max(detection_floor) / unit + inflation
        });
        let sizes: Vec<usize> = partition.subsets().iter().map(|s| s.len()).collect();
        let estimator = CalibratedEstimator::new(base, &sizes, &query, &used, length_scale, tail);
        let subset_bounds = search_subset_bounds(&estimator, m, &cfg.requirement);
        // Reused priors keep the coordinate they were originally sampled at;
        // fresh samples are keyed by their subset's mean similarity.
        let observations = used
            .iter()
            .map(|(&i, s)| PriorObservation {
                similarity: prior_coords
                    .get(&i)
                    .copied()
                    .unwrap_or_else(|| partition.subset(i).mean_similarity()),
                sample_size: s.sample_size,
                positives: s.positives,
            })
            .collect();
        let plan = SamplingPlan { partition, estimator, subset_bounds, observations };
        cache.store_plan(plan.clone());
        Ok(plan)
    }

    /// Optimizes the workload with an optional warm start and returns both the
    /// outcome and the [`WarmStart`] state seeding the next epoch.
    pub fn optimize_with_warm_start(
        &self,
        workload: &Workload,
        oracle: &mut dyn Oracle,
        warm: Option<&WarmStart>,
    ) -> Result<(OptimizationOutcome, WarmStart)> {
        let mut session = self.session_with_warm_start(workload, warm.cloned())?;
        let outcome = session.drive(oracle)?;
        let next = session
            .next_warm_start()
            .cloned()
            .expect("a completed partial-sampling session always produces warm-start state");
        Ok((outcome, next))
    }

    /// The suspendable full SAMP run: estimation plan, solution translation
    /// and final `DH` verification.
    pub(crate) fn session_core(
        &self,
        workload: &Workload,
        slate: &LabelSlate<'_>,
        warm: Option<&WarmStart>,
        cache: &mut ReplayCache,
    ) -> Drive<CoreOutput> {
        let plan = self.plan_core(workload, slate, warm, cache)?;
        let warm_out = plan.warm_start(workload);
        let solution = plan.solution(workload);
        let assignment = verified_assignment(&solution, workload, slate)?;
        Ok(CoreOutput { solution, assignment, warm_out: Some(warm_out) })
    }

    /// Algorithm 1: adaptive sampling plus Gaussian-process regression of the
    /// match-proportion function, optionally seeded with prior observations from
    /// a [`WarmStart`]. Returns the fitted GP, the calibrated per-subset
    /// deviation scale `c` (deviation variance ≈ `c·p(1−p)`), the map of all
    /// observations used (fresh and prior) keyed by subset index, and the
    /// original similarity coordinates of the reused priors.
    ///
    /// The initial equidistant subsets (whose membership is label-independent)
    /// are requested as one label batch; each adaptive refinement probe —
    /// inherently sequential, since the GP refresh decides where to look next —
    /// costs one batch of its own.
    ///
    /// The loop is *resumable*: when a sample suspends for labels, the
    /// training progress (sampler snapshot, training vectors, the fitted GP,
    /// the refinement queue and the in-flight probe) is stored in the
    /// [`ReplayCache`] and picked up by the next replay, which therefore costs
    /// O(one probe) instead of O(whole history). Resumption is byte-identical
    /// to a from-scratch replay (see [`GpTrainingState`]); with the cache
    /// disabled the function simply replays from scratch every time.
    ///
    /// The GP is refreshed per probe according to the configured
    /// [`RefitStrategy`]; hyperparameters are re-selected per probe up to
    /// [`SELECTION_WARMUP`] training points, past that whenever a probe
    /// surprises the GP by at least the error threshold or the training set
    /// has doubled since the last selection, and once more on the final
    /// training set (unless the scatter recalibration below already re-fits
    /// with fresh selection).
    #[allow(clippy::type_complexity)]
    fn train_match_proportion_gp(
        &self,
        workload: &Workload,
        partition: &SubsetPartition,
        slate: &LabelSlate<'_>,
        warm: Option<&WarmStart>,
        cache: &mut ReplayCache,
    ) -> Drive<(GaussianProcess, f64, BTreeMap<usize, SampleSummary>, BTreeMap<usize, f64>)> {
        let cfg = &self.config;
        let m = partition.len();
        if m < 2 {
            return Err(HumoError::InvalidWorkload(
                "partial sampling needs at least two subsets; lower the unit size or use the \
                 baseline or all-sampling optimizer"
                    .to_string(),
            )
            .into());
        }
        // Percentage budgets follow the paper, but a hard floor keeps the GP
        // well-constrained on small workloads where 1–5 % of the subsets would be
        // just a handful of points.
        let (min_subsets, max_subsets) = cfg.subset_budget(m);

        // Map prior observations onto the current partition: a prior is reusable
        // for the subset whose mean similarity is nearest, provided the
        // coordinate lies within half the typical subset spacing (priors further
        // from every subset describe a region of the curve this partition does
        // not probe, and are dropped; malformed priors are skipped, not
        // trusted). When several priors land on the same subset the largest
        // sample wins. Each reused prior keeps its *original* similarity
        // coordinate — re-keying it to the subset mean would let the coordinate
        // drift by up to the tolerance every epoch while the sample never
        // expires.
        let means: Vec<f64> = partition.subsets().iter().map(|s| s.mean_similarity()).collect();
        let mut prior_for: BTreeMap<usize, (f64, SampleSummary)> = BTreeMap::new();
        if let Some(warm) = warm {
            let spacings: Vec<f64> = means.windows(2).map(|w| w[1] - w[0]).collect();
            let tolerance = 0.5 * er_stats::descriptive::median(&spacings);
            for obs in &warm.observations {
                let Some(summary) = obs.summary() else { continue };
                if !obs.similarity.is_finite() {
                    continue;
                }
                let idx = nearest_index(&means, obs.similarity);
                if (means[idx] - obs.similarity).abs() <= tolerance {
                    let entry = prior_for.entry(idx).or_insert((obs.similarity, summary));
                    if obs.sample_size > entry.1.sample_size {
                        *entry = (obs.similarity, summary);
                    }
                }
            }
        }

        // Initial equidistant subsets, always including the first and last.
        let mut initial: Vec<usize> = (0..min_subsets)
            .map(|k| ((k as f64) * (m as f64 - 1.0) / (min_subsets as f64 - 1.0)).round() as usize)
            .collect();
        initial.dedup();
        // A warm start with observations always re-anchors the previous
        // human-region boundaries: the bound search is most sensitive there, so
        // those subsets join the initial set (covered by priors when available,
        // freshly sampled otherwise). An observation-less warm start is fully
        // inert, matching `WarmStart::is_empty`.
        if let Some((lo_sim, hi_sim)) =
            warm.filter(|w| !w.is_empty()).and_then(|w| w.human_interval)
        {
            for sim in [lo_sim, hi_sim] {
                initial.push(nearest_index(&means, sim));
            }
            initial.sort_unstable();
            initial.dedup();
        }

        // Resume suspended training progress when the replay cache holds any;
        // otherwise start from scratch (which is also the cache-disabled
        // behavior: `store_training` below is then a no-op, so every step
        // replays the loop in full — the pre-cache semantics).
        let mut st = match cache.take_training() {
            Some(st) => {
                workload.obs().counter("session.replay_cache.training_hits", 1);
                st
            }
            None => GpTrainingState::new(cfg.seed),
        };
        let mut sampler =
            SubsetSampler::restore(workload, partition, cfg.samples_per_subset, st.sampler.clone());

        // Fitting noise: the paper-faithful mode uses the raw binomial sampling
        // variance of each observed proportion (which vanishes in the near-pure
        // regions that dominate skewed workloads, so the GP effectively
        // interpolates there); the conservative mode uses an Agresti-adjusted
        // variance that never drops to zero.
        let conservative = cfg.conservative_noise;
        let push_sample = |st: &mut GpTrainingState, idx: usize, summary: SampleSummary| {
            st.train_x.push(partition.subset(idx).mean_similarity());
            st.train_y.push(summary.proportion());
            st.train_noise.push(if conservative {
                Self::binomial_noise(&summary)
            } else {
                // Paper-faithful: a pure sample (0 or k positives) is interpolated
                // essentially exactly; mixed samples carry their binomial variance.
                let k = summary.sample_size.max(1) as f64;
                let p = summary.proportion();
                (p * (1.0 - p) / k).max(1e-8)
            });
        };
        // `st.used` tracks every observation the GP trains on, keyed by subset
        // index. Prior observations cover their subset without oracle cost;
        // only uncovered subsets are sampled fresh. Reused priors still count
        // against the subset budget below — a warm start re-certifies the same
        // evidence density for fewer queries, it does not buy extra refinement.
        if !st.initial_done {
            // The whole initial set is one label batch: membership is fixed
            // before any of its labels are known, so the pairs can be asked in
            // parallel. Suspending here stores only the sampler's draws — the
            // rest of the state is still empty.
            let fresh_initial: Vec<usize> =
                initial.iter().copied().filter(|idx| !prior_for.contains_key(idx)).collect();
            if let Err(e) = sampler.sample_many_core(&fresh_initial, slate) {
                st.sampler = sampler.snapshot();
                cache.store_training(st);
                return Err(e);
            }
            for &idx in &initial {
                let summary = match prior_for.get(&idx) {
                    Some(&(coord, prior)) => {
                        st.priors_used += 1;
                        st.prior_coords.insert(idx, coord);
                        prior
                    }
                    // Cannot suspend: the batch above answered every fresh
                    // initial subset, so this is a cache hit.
                    None => sampler.sample_core(idx, slate)?,
                };
                st.used.insert(idx, summary);
                push_sample(&mut st, idx, summary);
            }
            let gp = GaussianProcess::fit_with_noise(
                &st.train_x,
                &st.train_y,
                &st.train_noise,
                cfg.gp_config_for(&st.train_y),
            )?;
            st.selected_at = st.train_x.len();
            st.gp = Some(gp);
            st.observed = st.used.iter().map(|(&idx, s)| (idx, s.proportion())).collect();
            st.queue = initial.windows(2).map(|w| (w[0], w[1])).collect();
            st.initial_done = true;
        }

        // Adaptive refinement (Algorithm 1): probe the midpoint between adjacent
        // sampled subsets; a large disagreement with the GP prediction keeps that
        // region on the refinement queue. Well-approximated gaps are revisited if
        // budget remains after the poorly-approximated ones, most-disagreeing
        // endpoints first: a gap whose two sampled endpoints differ a lot hides
        // most of the curve's movement (and most of the matching pairs), even if
        // its midpoint happened to look fine.
        let pop_most_interesting = |gaps: &mut Vec<(usize, usize)>,
                                    observed: &std::collections::BTreeMap<usize, f64>|
         -> Option<(usize, usize)> {
            if gaps.is_empty() {
                return None;
            }
            let score = |(a, b): &(usize, usize)| {
                let disagreement = (observed.get(a).copied().unwrap_or(0.0)
                    - observed.get(b).copied().unwrap_or(0.0))
                .abs();
                // Disagreement dominates; width breaks ties so large unexplored
                // gaps are still preferred over tiny ones.
                (disagreement * 1_000_000.0) as u64 * 10_000 + (b - a) as u64
            };
            let best = gaps
                .iter()
                .enumerate()
                .max_by_key(|(_, gap)| score(gap))
                .map(|(i, _)| i)
                .expect("non-empty gap list");
            Some(gaps.swap_remove(best))
        };
        while sampler.sampled_subset_count() + st.priors_used < max_subsets {
            // A probe that suspended last step resumes directly: the budget
            // check above sees the same counts a full replay would (its sample
            // never completed), and its `predicted` was computed before the
            // suspension from the same GP a replay would rebuild.
            let probe = match st.pending.take() {
                Some(probe) => probe,
                None => {
                    let Some((a, b)) = st
                        .queue
                        .pop_front()
                        .or_else(|| pop_most_interesting(&mut st.well_approximated, &st.observed))
                    else {
                        break;
                    };
                    if b.saturating_sub(a) <= 1 {
                        continue;
                    }
                    let x = a + (b - a) / 2;
                    if st.used.contains_key(&x) {
                        continue;
                    }
                    let v_x = partition.subset(x).mean_similarity();
                    let predicted =
                        st.gp.as_ref().expect("initial fit precedes refinement").predict_mean(v_x);
                    PendingProbe { a, b, x, predicted }
                }
            };
            // A prior observation covering the midpoint substitutes for the
            // fresh sample: the disagreement check still runs against it, so a
            // drifted curve region is refined with fresh samples around it.
            let summary = match prior_for.get(&probe.x) {
                Some(&(coord, prior)) => {
                    st.priors_used += 1;
                    st.prior_coords.insert(probe.x, coord);
                    prior
                }
                None => match sampler.sample_core(probe.x, slate) {
                    Ok(summary) => summary,
                    Err(e) => {
                        st.pending = Some(probe);
                        st.sampler = sampler.snapshot();
                        cache.store_training(st);
                        return Err(e);
                    }
                },
            };
            let observed_proportion = summary.proportion();
            st.observed.insert(probe.x, observed_proportion);
            st.used.insert(probe.x, summary);
            push_sample(&mut st, probe.x, summary);
            let appended = st.train_x.len() - 1;
            let surprised = (probe.predicted - observed_proportion).abs() >= cfg.gp_error_threshold;
            let mut gp = st.gp.take().expect("initial fit precedes refinement");
            if surprised
                || st.train_x.len() <= SELECTION_WARMUP
                || st.train_x.len() >= 2 * st.selected_at
            {
                // Re-select length scale and noise on the full data while the
                // training set is small (selection costs microseconds there and
                // every point moves the hyperparameters), when the probe
                // disagreed with the prediction (a surprise is evidence the
                // pinned hyperparameters no longer describe the curve), or when
                // the training set doubled since the last selection. Where the
                // GP is tracking well past the warm-up, the cheap extension
                // below carries the pinned hyperparameters forward instead.
                gp = GaussianProcess::fit_with_noise(
                    &st.train_x,
                    &st.train_y,
                    &st.train_noise,
                    cfg.gp_config_for(&st.train_y),
                )?;
                st.selected_at = st.train_x.len();
                workload.obs().counter("gp.reselect", 1);
            } else {
                match cfg.refit {
                    RefitStrategy::Incremental => {
                        gp.extend_with_noise(
                            &st.train_x[appended..],
                            &st.train_y[appended..],
                            &st.train_noise[appended..],
                        )?;
                        workload.obs().counter("gp.refit.incremental", 1);
                    }
                    RefitStrategy::Full => {
                        // Reference arm: from-scratch refactorization with the
                        // hyperparameters pinned to the current kernel —
                        // bit-identical to the incremental extension.
                        let pinned = GpConfig {
                            signal_variance: gp.kernel().signal_variance,
                            length_scale: Some(gp.kernel().length_scale),
                            noise_variance: gp.noise_variance(),
                            optimize_length_scale: false,
                            selection: er_stats::gp::LengthScaleSelection::HeldOutError,
                        };
                        gp = GaussianProcess::fit_with_noise(
                            &st.train_x,
                            &st.train_y,
                            &st.train_noise,
                            pinned,
                        )?;
                        workload.obs().counter("gp.refit.full", 1);
                    }
                }
            }
            st.gp = Some(gp);
            if surprised {
                st.queue.push_back((probe.a, probe.x));
                st.queue.push_back((probe.x, probe.b));
            } else {
                st.well_approximated.push((probe.a, probe.x));
                st.well_approximated.push((probe.x, probe.b));
            }
        }
        let mut gp = st.gp.take().expect("initial fit precedes calibration");
        let (train_x, train_y, train_noise) = (&st.train_x, &st.train_y, &st.train_noise);

        // Calibrate the per-subset deviation scale against the local scatter of
        // the observed proportions. On workloads whose per-subset proportions
        // scatter around the smooth curve (large σ in the paper's synthetic
        // generator), the binomial sampling noise alone underestimates the real
        // subset-level variability and the count bounds would become
        // overconfident; on smooth workloads (the DS/AB shapes) the calibration
        // detects nothing and leaves the paper-faithful tight bounds untouched.
        let binomial_scale = 1.0 / cfg.samples_per_subset as f64;
        let mut noise_scale = Self::local_noise_scale(train_x, train_y).unwrap_or(binomial_scale);
        noise_scale = noise_scale.max(binomial_scale);
        let scatter_detected = noise_scale > 2.0 * binomial_scale;
        if scatter_detected {
            let recalibrated_noise: Vec<f64> =
                train_y.iter().map(|&p| noise_scale * Self::stabilized_spread(p)).collect();
            gp = GaussianProcess::fit_with_noise(
                train_x,
                train_y,
                &recalibrated_noise,
                cfg.gp_config_for(train_y),
            )?;
        } else if st.selected_at != train_x.len() {
            // The refinement loop appended points since the last hyperparameter
            // selection; re-select on the final training set so the returned GP
            // does not depend on where the selection cadence happened to stop.
            // (The scatter recalibration above is itself a fresh selection.)
            gp = GaussianProcess::fit_with_noise(
                train_x,
                train_y,
                train_noise,
                cfg.gp_config_for(train_y),
            )?;
        }
        // Scale of the independent per-subset term added to the count variance:
        // the conservative mode always carries the full calibrated scatter plus
        // sampling error; the default mode adds only the *excess* scatter beyond
        // sampling error, and only when the data exhibits it.
        let diagonal_scale = if conservative {
            noise_scale
        } else if scatter_detected {
            noise_scale - binomial_scale
        } else {
            0.0
        };
        if std::env::var_os("HUMO_DEBUG").is_some() {
            eprintln!(
                "[humo-debug] sampled_subsets={} noise_scale={noise_scale:.5} scatter={scatter_detected} \
                 diag_scale={diagonal_scale:.5} length_scale={:.4} signal_var={:.4} gp_noise={:.6}",
                sampler.sampled_subset_count(),
                gp.kernel().length_scale,
                gp.kernel().signal_variance,
                gp.noise_variance(),
            );
            let mut points: Vec<(f64, f64)> =
                train_x.iter().copied().zip(train_y.iter().copied()).collect();
            points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            let tail: Vec<String> = points
                .iter()
                .rev()
                .take(10)
                .map(|(x, y)| format!("({x:.3},{y:.2}->{:.2})", gp.predict_mean(*x)))
                .collect();
            eprintln!("[humo-debug] top training points (x, observed->fit): {}", tail.join(" "));
        }
        Ok((gp, diagonal_scale, st.used, st.prior_coords))
    }

    /// Binomial sampling variance of an observed proportion, with an
    /// Agresti-style adjustment so pure samples still carry a nonzero noise.
    fn binomial_noise(summary: &er_stats::SampleSummary) -> f64 {
        let k = summary.sample_size.max(1) as f64;
        let adjusted = (summary.positives as f64 + 1.0) / (k + 2.0);
        adjusted * (1.0 - adjusted) / k
    }

    /// `p(1-p)` with `p` clamped away from the endpoints, used when spreading the
    /// calibrated noise scale across proportions.
    fn stabilized_spread(p: f64) -> f64 {
        let q = p.clamp(0.005, 0.995);
        q * (1.0 - q)
    }

    /// Estimates the per-subset deviation *scale* `c` such that the deviation
    /// variance of a subset with proportion `p` is approximately `c · p(1−p)`.
    ///
    /// Each observed proportion is compared with the straight line through its two
    /// neighbours (after sorting by similarity): for a smooth match-proportion
    /// curve the interpolation error is second order in the sample spacing, so the
    /// residual is dominated by subset-level scatter plus within-subset sampling
    /// error. Normalizing each squared residual by `p(1−p)` and taking the median
    /// (scaled by the χ²₁ median and the 1.5 variance factor of the interpolation
    /// residual) yields a robust estimate of `c`. Returns `None` when fewer than
    /// five points are available.
    fn local_noise_scale(train_x: &[f64], train_y: &[f64]) -> Option<f64> {
        if train_x.len() < 5 {
            return None;
        }
        let mut points: Vec<(f64, f64)> =
            train_x.iter().copied().zip(train_y.iter().copied()).collect();
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite similarities"));
        let mut normalized_residuals = Vec::with_capacity(points.len().saturating_sub(2));
        for w in points.windows(3) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let (x2, y2) = w[2];
            if x2 - x0 <= f64::EPSILON {
                continue;
            }
            let t = (x1 - x0) / (x2 - x0);
            let interpolated = y0 + t * (y2 - y0);
            let r = y1 - interpolated;
            normalized_residuals.push(r * r / Self::stabilized_spread(y1));
        }
        if normalized_residuals.is_empty() {
            return None;
        }
        // r = ε₁ − ((1−t) ε₀ + t ε₂) has variance ≈ 1.5 σ² for t ≈ 0.5; the median
        // of σ²·χ²₁ is ≈ 0.455 σ².
        let median = er_stats::descriptive::median(&normalized_residuals);
        Some(median / (1.5 * 0.455))
    }
}

/// Index of the value in an ascending slice nearest to `x`.
fn nearest_index(sorted: &[f64], x: f64) -> usize {
    debug_assert!(!sorted.is_empty());
    let i = sorted.partition_point(|&v| v < x);
    if i == 0 {
        0
    } else if i >= sorted.len() {
        sorted.len() - 1
    } else if (x - sorted[i - 1]).abs() <= (sorted[i] - x).abs() {
        i - 1
    } else {
        i
    }
}

impl Optimizer for PartialSamplingOptimizer {
    fn optimize(
        &self,
        workload: &Workload,
        oracle: &mut dyn Oracle,
    ) -> Result<OptimizationOutcome> {
        self.session(workload)?.drive(oracle)
    }

    fn name(&self) -> &'static str {
        "SAMP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};

    fn workload(n: usize, sigma: f64, seed: u64) -> Workload {
        SyntheticGenerator::new(SyntheticConfig {
            num_pairs: n,
            tau: 14.0,
            sigma,
            subset_size: 200,
            seed,
        })
        .generate()
    }

    fn run(workload: &Workload, level: f64, seed: u64) -> OptimizationOutcome {
        let requirement = QualityRequirement::symmetric(level).unwrap();
        let config = PartialSamplingConfig::new(requirement).with_seed(seed);
        let optimizer = PartialSamplingOptimizer::new(config).unwrap();
        let mut oracle = GroundTruthOracle::new();
        optimizer.optimize(workload, &mut oracle).unwrap()
    }

    #[test]
    fn meets_the_requirement_with_high_success_rate() {
        let w = workload(40_000, 0.1, 11);
        let runs = 10;
        let mut successes = 0;
        for seed in 0..runs {
            let outcome = run(&w, 0.9, seed);
            if outcome.metrics.precision() >= 0.9 && outcome.metrics.recall() >= 0.9 {
                successes += 1;
            }
        }
        assert!(successes >= runs - 1, "SAMP met the requirement only {successes}/{runs} times");
    }

    #[test]
    fn samples_far_fewer_subsets_than_all_sampling() {
        let w = workload(40_000, 0.1, 13);
        let requirement = QualityRequirement::symmetric(0.9).unwrap();
        let config = PartialSamplingConfig::new(requirement);
        let optimizer = PartialSamplingOptimizer::new(config).unwrap();
        let mut oracle = GroundTruthOracle::new();
        let plan = optimizer.plan(&w, &mut oracle).unwrap();
        let m = plan.partition.len();
        // Sampling budget is p_u = 5% of subsets (with a floor of 20 subsets for
        // small workloads); the oracle cost before resolution is bounded by that
        // subset budget times the per-subset sample size.
        let subset_budget = ((m as f64 * 0.05).ceil() as usize).max(20) + 1;
        let max_sampled_pairs =
            subset_budget * PartialSamplingConfig::new(requirement).samples_per_subset;
        assert!(
            oracle.labels_issued() <= max_sampled_pairs,
            "sampling cost {} exceeds the budget {max_sampled_pairs}",
            oracle.labels_issued()
        );
    }

    #[test]
    fn cheaper_than_the_conservative_baseline() {
        let w = workload(40_000, 0.1, 17);
        let samp = run(&w, 0.9, 3);
        let base = {
            let requirement = QualityRequirement::symmetric(0.9).unwrap();
            let config = crate::baseline::BaselineConfig::new(requirement);
            let optimizer = crate::baseline::BaselineOptimizer::new(config).unwrap();
            let mut oracle = GroundTruthOracle::new();
            optimizer.optimize(&w, &mut oracle).unwrap()
        };
        assert!(
            samp.total_human_cost < base.total_human_cost,
            "SAMP ({}) should be cheaper than BASE ({}) on a steep logistic workload",
            samp.total_human_cost,
            base.total_human_cost
        );
    }

    #[test]
    fn copes_with_an_irregular_workload() {
        // σ = 0.5 breaks the monotonicity assumption; SAMP should still mostly meet
        // the requirement thanks to the GP's robustness (paper, Figure 10).
        let w = workload(40_000, 0.5, 19);
        let outcome = run(&w, 0.9, 5);
        // On this adversarial workload the default (paper-faithful) bounds give up
        // some precision; the conservative_noise mode recovers the guarantee at a
        // higher cost (see the ablation bench and EXPERIMENTS.md).
        assert!(outcome.metrics.precision() >= 0.75, "precision {}", outcome.metrics.precision());
        assert!(outcome.metrics.recall() >= 0.8, "recall {}", outcome.metrics.recall());
        let conservative = PartialSamplingOptimizer::new(PartialSamplingConfig {
            conservative_noise: true,
            ..PartialSamplingConfig::new(QualityRequirement::symmetric(0.9).unwrap())
        })
        .unwrap();
        let mut oracle = crate::oracle::GroundTruthOracle::new();
        let safe = conservative.optimize(&w, &mut oracle).unwrap();
        assert!(
            safe.metrics.precision() >= 0.85,
            "conservative precision {}",
            safe.metrics.precision()
        );
        assert!(safe.metrics.recall() >= 0.85, "conservative recall {}", safe.metrics.recall());
        assert!(safe.total_human_cost >= outcome.total_human_cost);
    }

    #[test]
    fn rejects_invalid_configurations() {
        let requirement = QualityRequirement::symmetric(0.9).unwrap();
        let base = PartialSamplingConfig::new(requirement);
        assert!(
            PartialSamplingOptimizer::new(PartialSamplingConfig { unit_size: 0, ..base }).is_err()
        );
        assert!(PartialSamplingOptimizer::new(PartialSamplingConfig {
            samples_per_subset: 0,
            ..base
        })
        .is_err());
        assert!(PartialSamplingOptimizer::new(PartialSamplingConfig {
            sampling_range: (0.5, 0.1),
            ..base
        })
        .is_err());
        assert!(PartialSamplingOptimizer::new(PartialSamplingConfig {
            gp_error_threshold: 0.0,
            ..base
        })
        .is_err());
    }

    #[test]
    fn warm_start_none_matches_cold_plan_exactly() {
        let w = workload(20_000, 0.1, 41);
        let requirement = QualityRequirement::symmetric(0.9).unwrap();
        let optimizer =
            PartialSamplingOptimizer::new(PartialSamplingConfig::new(requirement)).unwrap();
        let mut oracle_a = GroundTruthOracle::new();
        let cold = optimizer.plan(&w, &mut oracle_a).unwrap();
        let mut oracle_b = GroundTruthOracle::new();
        let explicit = optimizer.plan_with_warm_start(&w, &mut oracle_b, None).unwrap();
        assert_eq!(cold.subset_bounds, explicit.subset_bounds);
        assert_eq!(oracle_a.labels_issued(), oracle_b.labels_issued());
        // An *empty* warm start must also be a no-op — including one that
        // carries a human interval but no observations.
        let mut oracle_c = GroundTruthOracle::new();
        let empty = WarmStart::default();
        let seeded = optimizer.plan_with_warm_start(&w, &mut oracle_c, Some(&empty)).unwrap();
        assert_eq!(cold.subset_bounds, seeded.subset_bounds);
        assert_eq!(oracle_a.labels_issued(), oracle_c.labels_issued());
        let mut oracle_d = GroundTruthOracle::new();
        let interval_only =
            WarmStart { observations: Vec::new(), human_interval: Some((0.4, 0.6)) };
        let seeded =
            optimizer.plan_with_warm_start(&w, &mut oracle_d, Some(&interval_only)).unwrap();
        assert_eq!(cold.subset_bounds, seeded.subset_bounds);
        assert_eq!(oracle_a.labels_issued(), oracle_d.labels_issued());
        // Malformed priors are skipped rather than trusted or panicked on.
        let mut oracle_e = GroundTruthOracle::new();
        let malformed = WarmStart {
            observations: vec![
                PriorObservation { similarity: 0.5, sample_size: 5, positives: 9 },
                PriorObservation { similarity: f64::NAN, sample_size: 10, positives: 1 },
            ],
            human_interval: None,
        };
        let seeded = optimizer.plan_with_warm_start(&w, &mut oracle_e, Some(&malformed)).unwrap();
        assert_eq!(cold.subset_bounds, seeded.subset_bounds);
        assert_eq!(oracle_a.labels_issued(), oracle_e.labels_issued());
    }

    #[test]
    fn warm_start_saves_oracle_queries_at_unchanged_quality() {
        let w = workload(30_000, 0.1, 43);
        let requirement = QualityRequirement::symmetric(0.9).unwrap();
        let optimizer =
            PartialSamplingOptimizer::new(PartialSamplingConfig::new(requirement)).unwrap();
        // Epoch 1: cold plan, capture the warm state.
        let mut epoch1_oracle = GroundTruthOracle::new();
        let plan = optimizer.plan(&w, &mut epoch1_oracle).unwrap();
        let warm = plan.warm_start(&w);
        assert!(!warm.is_empty());
        // Epoch 2 over the same workload, fresh oracles to isolate plan-phase
        // query counts: warm must be measurably cheaper than cold.
        let mut cold_oracle = GroundTruthOracle::new();
        optimizer.plan(&w, &mut cold_oracle).unwrap();
        let mut warm_oracle = GroundTruthOracle::new();
        let warm_plan = optimizer.plan_with_warm_start(&w, &mut warm_oracle, Some(&warm)).unwrap();
        assert!(
            warm_oracle.labels_issued() < cold_oracle.labels_issued(),
            "warm plan used {} oracle queries, cold used {}",
            warm_oracle.labels_issued(),
            cold_oracle.labels_issued()
        );
        // Resolving the warm plan still meets the requirement.
        let solution = warm_plan.solution(&w);
        let outcome = OptimizationOutcome::from_solution(solution, &w, &mut warm_oracle).unwrap();
        assert!(outcome.metrics.precision() >= 0.9, "precision {}", outcome.metrics.precision());
        assert!(outcome.metrics.recall() >= 0.9, "recall {}", outcome.metrics.recall());
    }

    #[test]
    fn warm_start_transfers_to_a_grown_workload() {
        // A representative 80% subsample stands in for the earlier epoch; the
        // full workload is the grown one. Priors are keyed by similarity, so
        // they transfer across the changed partition.
        let full = workload(30_000, 0.1, 47);
        let partial = Workload::from_scores(
            full.pairs()
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 5 != 0)
                .map(|(_, p)| (p.similarity(), p.is_match())),
        )
        .unwrap();
        let requirement = QualityRequirement::symmetric(0.9).unwrap();
        let optimizer =
            PartialSamplingOptimizer::new(PartialSamplingConfig::new(requirement)).unwrap();
        let mut epoch1_oracle = GroundTruthOracle::new();
        let warm = optimizer.plan(&partial, &mut epoch1_oracle).unwrap().warm_start(&partial);
        let mut cold_oracle = GroundTruthOracle::new();
        optimizer.plan(&full, &mut cold_oracle).unwrap();
        let mut warm_oracle = GroundTruthOracle::new();
        let warm_plan =
            optimizer.plan_with_warm_start(&full, &mut warm_oracle, Some(&warm)).unwrap();
        let warm_plan_queries = warm_oracle.labels_issued();
        assert!(
            warm_plan_queries < cold_oracle.labels_issued(),
            "warm plan on the grown workload used {warm_plan_queries} queries, cold used {}",
            cold_oracle.labels_issued()
        );
        let next_warm = warm_plan.warm_start(&full);
        let solution = warm_plan.solution(&full);
        let outcome =
            OptimizationOutcome::from_solution(solution, &full, &mut warm_oracle).unwrap();
        assert!(outcome.metrics.precision() >= 0.85, "precision {}", outcome.metrics.precision());
        assert!(outcome.metrics.recall() >= 0.85, "recall {}", outcome.metrics.recall());
        assert!(!next_warm.is_empty());
    }

    #[test]
    fn plan_solution_translates_subset_bounds() {
        let w = workload(10_000, 0.1, 23);
        let requirement = QualityRequirement::symmetric(0.85).unwrap();
        let optimizer =
            PartialSamplingOptimizer::new(PartialSamplingConfig::new(requirement)).unwrap();
        let mut oracle = GroundTruthOracle::new();
        let plan = optimizer.plan(&w, &mut oracle).unwrap();
        let solution = plan.solution(&w);
        let (lo, hi) = plan.subset_bounds;
        assert!(lo <= hi);
        assert!(solution.lower_index <= solution.upper_index);
        assert!(solution.human_region_size() <= w.len());
        // The human region covers exactly the chosen subsets.
        if hi > lo {
            assert_eq!(solution.lower_index, plan.partition.subset(lo).range().start);
            assert_eq!(solution.upper_index, plan.partition.subset(hi - 1).range().end);
        }
    }
}
