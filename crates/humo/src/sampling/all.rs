//! The all-sampling optimizer (Section VI-A).
//!
//! Samples a fixed number of pairs from *every* subset, aggregates the per-subset
//! estimates with stratified-sampling theory, and searches for the smallest human
//! region whose recall (Eq. 13) and precision (Eq. 14) bounds clear the
//! requirement at confidence `θ` (using `√θ` per bound). Sampling every subset is
//! what makes the approach expensive: the paper proposes the partial-sampling
//! variant (`SAMP`) to cut that cost, and keeps this one as an internal baseline.

use super::calibrated::{CalibratedEstimator, ShortfallBaseline, TailCalibration};
use super::estimator::{search_subset_bounds, StratifiedCountEstimator};
use super::sampler::SubsetSampler;
use crate::optimizer::Optimizer;
use crate::oracle::Oracle;
use crate::requirement::QualityRequirement;
use crate::session::{
    verified_assignment, CoreOutput, Drive, LabelSlate, LabelingSession, SessionConfig,
};
use crate::solution::{HumoSolution, OptimizationOutcome};
use crate::{HumoError, Result};
use er_core::workload::Workload;

/// Configuration of the all-sampling optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllSamplingConfig {
    /// The quality requirement to enforce.
    pub requirement: QualityRequirement,
    /// Number of pairs per similarity-ordered subset (the paper uses 200).
    pub unit_size: usize,
    /// Number of pairs sampled (and manually labeled) from each subset.
    pub samples_per_subset: usize,
    /// Tail calibration of the count bounds: pure `0/k` (or `k/k`) strata carry
    /// zero naive variance, so the Student-t bounds are overconfident exactly
    /// where the Clopper–Pearson detection limit still allows matches.
    pub tail_calibration: TailCalibration,
    /// RNG seed for within-subset sampling.
    pub seed: u64,
}

impl AllSamplingConfig {
    /// Creates a configuration with the paper's defaults.
    pub fn new(requirement: QualityRequirement) -> Self {
        Self {
            requirement,
            unit_size: 200,
            samples_per_subset: 20,
            // Every stratum carries its own sample, so the Student-t slack and
            // the pooled detection limit describe the same draws: top up only
            // what the base bound does not already grant. The looser quiet
            // threshold keeps the small per-stratum samples (20 draws) from
            // fragmenting quiet runs on single lucky positives. The lower-side
            // saturation cap stays off here (unlike the SAMP/HYBR default):
            // the mid-steep precision gap it closes is a GP *extrapolation*
            // artifact, and ALL never extrapolates — every kept subset is
            // informed by its own draws, and the `calibration_coverage`
            // harness measures ≤ 1/20 precision failures per cell across the
            // full τ grid without the cap, while enabling it costs +11–14%
            // extra human labeling on steep curves for no coverage gain.
            tail_calibration: TailCalibration {
                shortfall_baseline: ShortfallBaseline::UpperBound,
                quiet_fraction: 0.1,
                calibrate_lower: false,
                ..TailCalibration::default()
            },
            seed: 1,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.unit_size == 0 {
            return Err(HumoError::InvalidConfig("unit size must be positive".to_string()));
        }
        if self.samples_per_subset == 0 {
            return Err(HumoError::InvalidConfig(
                "samples per subset must be positive".to_string(),
            ));
        }
        Ok(())
    }
}

/// The all-sampling optimizer.
#[derive(Debug, Clone)]
pub struct AllSamplingOptimizer {
    config: AllSamplingConfig,
}

impl AllSamplingOptimizer {
    /// Creates an all-sampling optimizer, validating the configuration.
    pub fn new(config: AllSamplingConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &AllSamplingConfig {
        &self.config
    }

    /// Starts a sans-I/O [`LabelingSession`] for this optimizer over the
    /// workload — the batched, resumable alternative to
    /// [`Optimizer::optimize`].
    pub fn session<'w>(&self, workload: &'w Workload) -> Result<LabelingSession<'w>> {
        LabelingSession::new(SessionConfig::AllSampling(self.config), workload)
    }

    /// The suspendable all-sampling run. Every subset's sample membership is
    /// label-independent, so the entire sampling phase is emitted as **one**
    /// label batch: an all-sampling session costs at most two round-trips
    /// (sample everything, then verify whatever of `DH` the samples did not
    /// already cover — possibly nothing).
    pub(crate) fn session_core(
        &self,
        workload: &Workload,
        slate: &LabelSlate<'_>,
    ) -> Drive<CoreOutput> {
        if workload.is_empty() {
            return Err(HumoError::InvalidWorkload(
                "cannot optimize an empty workload".to_string(),
            )
            .into());
        }
        let cfg = &self.config;
        let partition = workload.partition(cfg.unit_size)?;
        let mut sampler =
            SubsetSampler::new(workload, &partition, cfg.samples_per_subset, cfg.seed);
        let all: Vec<usize> = (0..partition.len()).collect();
        let samples = sampler.sample_many_core(&all, slate)?;
        let base = StratifiedCountEstimator::new(&partition, &samples);
        // Every subset carries its own sample (distance zero), so the tail
        // bound reduces to each stratum's own Clopper–Pearson limits; the
        // length scale only matters for unsampled subsets and is arbitrary here.
        let sizes: Vec<usize> = partition.subsets().iter().map(|s| s.len()).collect();
        let inputs: Vec<f64> = partition.subsets().iter().map(|s| s.mean_similarity()).collect();
        let estimator = CalibratedEstimator::new(
            base,
            &sizes,
            &inputs,
            sampler.samples(),
            1.0,
            cfg.tail_calibration,
        );
        let (lo, hi) = search_subset_bounds(&estimator, partition.len(), &cfg.requirement);

        let lower_index =
            if lo >= partition.len() { workload.len() } else { partition.subset(lo).range().start };
        let upper_index =
            if hi == 0 { 0 } else { partition.subset(hi - 1).range().end.max(lower_index) };
        let solution = HumoSolution::new(lower_index, upper_index.max(lower_index), workload.len());
        let assignment = verified_assignment(&solution, workload, slate)?;
        Ok(CoreOutput { solution, assignment, warm_out: None })
    }
}

impl Optimizer for AllSamplingOptimizer {
    fn optimize(
        &self,
        workload: &Workload,
        oracle: &mut dyn Oracle,
    ) -> Result<OptimizationOutcome> {
        self.session(workload)?.drive(oracle)
    }

    fn name(&self) -> &'static str {
        "ALL-SAMP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};

    fn workload(n: usize, seed: u64) -> Workload {
        SyntheticGenerator::new(SyntheticConfig {
            num_pairs: n,
            tau: 14.0,
            sigma: 0.1,
            subset_size: 200,
            seed,
        })
        .generate()
    }

    fn run(workload: &Workload, level: f64, seed: u64) -> OptimizationOutcome {
        let requirement = QualityRequirement::symmetric(level).unwrap();
        let mut config = AllSamplingConfig::new(requirement);
        config.unit_size = 200;
        config.samples_per_subset = 30;
        config.seed = seed;
        let optimizer = AllSamplingOptimizer::new(config).unwrap();
        let mut oracle = GroundTruthOracle::new();
        optimizer.optimize(workload, &mut oracle).unwrap()
    }

    #[test]
    fn usually_meets_the_requirement_on_synthetic_workloads() {
        let w = workload(30_000, 5);
        let mut successes = 0;
        let runs = 10;
        for seed in 0..runs {
            let outcome = run(&w, 0.9, seed);
            if outcome.metrics.precision() >= 0.9 && outcome.metrics.recall() >= 0.9 {
                successes += 1;
            }
        }
        assert!(
            successes >= runs - 2,
            "all-sampling met the requirement only {successes}/{runs} times"
        );
    }

    #[test]
    fn sampling_cost_covers_every_subset() {
        let w = workload(20_000, 7);
        let outcome = run(&w, 0.9, 1);
        let num_subsets = 20_000 / 200;
        // At least one sampled pair per subset must be paid for (those outside DH
        // count as sampling cost; those inside are folded into verification cost).
        assert!(outcome.total_human_cost >= outcome.verification_cost);
        assert!(outcome.sampling_cost > 0);
        assert!(outcome.sampling_cost <= num_subsets * 30);
    }

    #[test]
    fn rejects_invalid_configuration_and_empty_workloads() {
        let requirement = QualityRequirement::symmetric(0.9).unwrap();
        assert!(AllSamplingOptimizer::new(AllSamplingConfig {
            unit_size: 0,
            ..AllSamplingConfig::new(requirement)
        })
        .is_err());
        assert!(AllSamplingOptimizer::new(AllSamplingConfig {
            samples_per_subset: 0,
            ..AllSamplingConfig::new(requirement)
        })
        .is_err());
        let optimizer = AllSamplingOptimizer::new(AllSamplingConfig::new(requirement)).unwrap();
        let empty = Workload::from_pairs(vec![]).unwrap();
        let mut oracle = GroundTruthOracle::new();
        assert!(optimizer.optimize(&empty, &mut oracle).is_err());
    }
}
