//! HUMO — a HUman and Machine cOoperation framework for entity resolution with
//! quality guarantees.
//!
//! This crate is a from-scratch implementation of the framework described in
//! *"Enabling Quality Control for Entity Resolution: A Human and Machine
//! Cooperation Framework"* (Chen et al., ICDE 2018). Given an ER workload of
//! instance pairs scored by a machine metric (pair similarity, SVM distance,
//! match probability, …), HUMO divides the metric axis into three zones:
//!
//! ```text
//!     0 ──────────── v⁻ ═════════════ v⁺ ──────────── 1
//!        D⁻ (machine:          DH             D⁺ (machine:
//!        label unmatch)   (human verifies)    label match)
//! ```
//!
//! and chooses `v⁻`/`v⁺` so that user-specified **precision** (α), **recall** (β)
//! and **confidence** (θ) requirements are met while the number of manually
//! verified pairs — the human cost — is minimized.
//!
//! Three optimizers are provided, mirroring the paper:
//!
//! * [`BaselineOptimizer`] (Section V) — conservative, relies only on the
//!   monotonicity-of-precision assumption, guarantees the requirement with 100 %
//!   confidence when monotonicity holds;
//! * [`PartialSamplingOptimizer`] (Section VI-B, "SAMP") — samples a small
//!   fraction of similarity-ordered subsets, fits a Gaussian-process regression
//!   of the match-proportion function, and derives confidence bounds from the GP
//!   posterior; [`AllSamplingOptimizer`] (Section VI-A) is the simpler variant
//!   that samples every subset;
//! * [`HybridOptimizer`] (Section VII, "HYBR") — starts from a SAMP solution and
//!   shrinks the human region using the better of the baseline and sampling
//!   estimates at every step.
//!
//! Every optimizer is implemented as a sans-I/O **labeling session**
//! ([`LabelingSession`]): a resumable state machine that emits *batches* of
//! label requests (whole subset samples, whole boundary probes, the full human
//! region for final verification) and is driven with responses — the shape a
//! production system needs when labels come from real people asynchronously.
//! The classic `Optimizer::optimize(workload, oracle)` entry point is a thin
//! driver loop over that state machine ([`LabelingSession::drive`]), so both
//! APIs behave byte-identically; see the [`session`] module docs.
//!
//! All three sampling-based optimizers route their count bounds through the
//! two-sided tail-calibrated estimator ([`sampling::CalibratedEstimator`]):
//! one-sided binomial detection limits keep the recall guarantee honest on
//! flat match-proportion curves (all-negative samples cannot certify
//! emptiness) and the precision guarantee honest on mid-steep curves
//! (near-pure samples cannot certify `p = 1`), where the raw GP/stratified
//! bounds are overconfident (see the module docs of [`sampling`] and the
//! `calibration_coverage` harness in the bench crate).
//!
//! # Quick example
//!
//! ```
//! use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};
//! use humo::{GroundTruthOracle, HybridConfig, HybridOptimizer, Optimizer, QualityRequirement};
//!
//! // A 20k-pair workload whose match proportion follows the paper's logistic curve.
//! let workload = SyntheticGenerator::new(SyntheticConfig::new(20_000, 14.0, 0.1)).generate();
//!
//! // Require precision >= 0.9 and recall >= 0.9 with 90% confidence.
//! let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
//! let optimizer = HybridOptimizer::new(HybridConfig::new(requirement)).unwrap();
//!
//! let mut oracle = GroundTruthOracle::new();
//! let outcome = optimizer.optimize(&workload, &mut oracle).unwrap();
//!
//! assert!(outcome.metrics.precision() >= 0.9);
//! assert!(outcome.metrics.recall() >= 0.9);
//! println!(
//!     "human cost: {} pairs ({:.1}% of the workload)",
//!     outcome.total_human_cost,
//!     100.0 * outcome.human_cost_fraction(workload.len())
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod crowd;
pub mod error;
pub mod hybrid;
pub mod optimizer;
pub mod oracle;
pub mod requirement;
pub mod sampling;
pub mod session;
pub mod solution;
pub mod wal;

pub use baseline::{BaselineConfig, BaselineOptimizer, InitialBoundary};
pub use crowd::{
    symmetric_pool, Aggregation, CrowdOracle, CrowdSession, CrowdStats, EmConfig, Redundancy,
    VoteRequest, WorkerId, WorkerModel, WorkerVote,
};
pub use error::HumoError;
pub use hybrid::{HybridConfig, HybridOptimizer};
pub use optimizer::{Optimizer, OptimizerKind};
pub use oracle::{GroundTruthOracle, NoisyOracle, Oracle};
pub use requirement::QualityRequirement;
pub use sampling::{
    AllSamplingConfig, AllSamplingOptimizer, CalibratedEstimator, PartialSamplingConfig,
    PartialSamplingOptimizer, PriorObservation, RefitStrategy, ShortfallBaseline, TailCalibration,
    WarmStart,
};
pub use session::{
    answer_requests, LabelRequest, LabelResponse, LabelingSession, SessionConfig, SessionPhase,
    SessionState, Step,
};
pub use solution::{HumoSolution, OptimizationOutcome};
pub use wal::{DurableSession, WalRecord, WalRecovery, WalWriter};

/// Convenience result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, HumoError>;
