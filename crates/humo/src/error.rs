//! Error type for the HUMO framework.

/// Errors raised by the `humo` crate.
#[derive(Debug, Clone, PartialEq)]
pub enum HumoError {
    /// A quality requirement or optimizer configuration was invalid.
    InvalidConfig(String),
    /// The supplied workload cannot be optimized (e.g. it is empty).
    InvalidWorkload(String),
    /// A labeling-session response referenced a pair the session's workload
    /// does not contain.
    InvalidResponse(String),
    /// An internal statistical computation failed.
    Stats(String),
    /// An error bubbled up from the `er-core` substrate.
    Core(String),
    /// A write-ahead label log operation failed: I/O, a corrupted `HAL1`
    /// frame, or a log that does not match the session it claims to resume.
    Wal(String),
}

impl std::fmt::Display for HumoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HumoError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HumoError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            HumoError::InvalidResponse(msg) => write!(f, "invalid label response: {msg}"),
            HumoError::Stats(msg) => write!(f, "statistics error: {msg}"),
            HumoError::Core(msg) => write!(f, "core error: {msg}"),
            HumoError::Wal(msg) => write!(f, "label wal: {msg}"),
        }
    }
}

impl std::error::Error for HumoError {}

impl From<er_stats::StatsError> for HumoError {
    fn from(e: er_stats::StatsError) -> Self {
        HumoError::Stats(e.to_string())
    }
}

impl From<er_core::ErError> for HumoError {
    fn from(e: er_core::ErError) -> Self {
        HumoError::Core(e.to_string())
    }
}
