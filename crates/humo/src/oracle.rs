//! The human oracle: one possible *driver* of a labeling session, with cost
//! accounting.
//!
//! The paper quantifies human cost as "the number of manually inspected instance
//! pairs". Since the sans-I/O redesign, the optimizers themselves never talk to
//! a human directly: they run as [`LabelingSession`](crate::LabelingSession)
//! state machines that *emit* batches of [`LabelRequest`](crate::LabelRequest)s
//! and are *driven* with [`LabelResponse`](crate::LabelResponse)s — by a
//! crowdsourcing dispatcher, a labeling UI, a checkpoint/resume loop, or
//! anything else that can produce labels asynchronously.
//!
//! An [`Oracle`] is the simplest such driver: a synchronous label source that
//! answers every request immediately.
//! [`LabelingSession::drive`](crate::LabelingSession::drive) feeds each emitted
//! batch through [`Oracle::label_batch`] until the session completes, which is
//! exactly what the classic `Optimizer::optimize(workload, oracle)` entry point
//! does under the hood. An oracle deduplicates repeated requests for the same
//! pair and reports the number of *distinct* pairs inspected — the paper's
//! human-cost metric.
//!
//! Two oracles are provided:
//!
//! * [`GroundTruthOracle`] — the paper's operating assumption (Section IV-A):
//!   manual labels are 100 % accurate;
//! * [`NoisyOracle`] — flips each label with a configurable probability, used by
//!   the failure-injection tests to study what happens when the human is
//!   imperfect. Each flip is a pure function of `(seed, pair id)`, so the
//!   answers do not depend on the order (or batching) in which pairs are asked
//!   — a requirement for batched/parallel dispatch, where arrival order is
//!   nondeterministic.

use crate::crowd::WorkerModel;
use er_core::workload::{InstancePair, Label, PairId};
use std::collections::BTreeMap;

/// A source of manual labels with cost accounting.
///
/// Implementations answer synchronously; they are the simplest way to drive a
/// [`LabelingSession`](crate::LabelingSession) to completion
/// (via [`LabelingSession::drive`](crate::LabelingSession::drive)). Systems
/// whose labels arrive asynchronously should skip this trait entirely and feed
/// the session's emitted request batches directly.
pub trait Oracle {
    /// Manually labels an instance pair. Asking about the same pair twice must
    /// not increase the reported cost.
    fn label(&mut self, pair: &InstancePair) -> Label;

    /// Labels a batch of pairs in one call, in request order.
    ///
    /// The default implementation simply labels one pair at a time; custom
    /// oracles can override it to amortize per-batch work (dispatching one
    /// crowdsourcing task per batch, bulk-loading context, …). The session
    /// driver routes every emitted request batch through this method.
    fn label_batch(&mut self, pairs: &[&InstancePair]) -> Vec<Label> {
        pairs.iter().map(|pair| self.label(pair)).collect()
    }

    /// Number of *distinct* pairs labeled so far — the human cost.
    fn labels_issued(&self) -> usize;
}

/// A perfect human: returns the ground-truth label of every pair.
#[derive(Debug, Clone, Default)]
pub struct GroundTruthOracle {
    labeled: BTreeMap<PairId, Label>,
}

impl GroundTruthOracle {
    /// Creates a fresh oracle with zero cost.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Oracle for GroundTruthOracle {
    fn label(&mut self, pair: &InstancePair) -> Label {
        *self.labeled.entry(pair.id()).or_insert_with(|| pair.ground_truth())
    }

    fn labels_issued(&self) -> usize {
        self.labeled.len()
    }
}

/// An imperfect human: flips the ground-truth label with probability
/// `error_rate`.
///
/// Since the `er-crowd` refactor this is a thin wrapper over a single
/// symmetric [`WorkerModel`] — a crowd of one.
/// Whether a pair's label is flipped is a pure function of the oracle's seed
/// and the pair's id, so the same pair always gets the same answer *and* the
/// answers are independent of query order: labeling pairs one by one, in
/// permuted order, or in parallel batches yields identical labels. The flip
/// decision is bit-for-bit the SplitMix64 draw this oracle has always used
/// (pinned by the `flip_decisions_are_pinned_to_the_splitmix64_draw`
/// regression test), so existing seeds keep producing the same noise.
#[derive(Debug, Clone)]
pub struct NoisyOracle {
    worker: WorkerModel,
    labeled: BTreeMap<PairId, Label>,
}

impl NoisyOracle {
    /// Creates a noisy oracle with the given per-pair error probability.
    ///
    /// # Panics
    /// Panics if `error_rate` is not in `[0, 1]`.
    pub fn new(error_rate: f64, seed: u64) -> Self {
        Self { worker: WorkerModel::symmetric(error_rate, seed), labeled: BTreeMap::new() }
    }

    /// The configured error rate.
    pub fn error_rate(&self) -> f64 {
        self.worker.flip_match()
    }
}

impl Oracle for NoisyOracle {
    fn label(&mut self, pair: &InstancePair) -> Label {
        let worker = self.worker;
        *self.labeled.entry(pair.id()).or_insert_with(|| {
            Label::from_bool(worker.vote(pair.id().0, pair.ground_truth() == Label::Match))
        })
    }

    fn labels_issued(&self) -> usize {
        self.labeled.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::workload::{InstancePair, PairId};

    fn pair(id: u64, sim: f64, is_match: bool) -> InstancePair {
        InstancePair::new(PairId(id), sim, Label::from_bool(is_match))
    }

    #[test]
    fn ground_truth_oracle_returns_truth_and_counts_distinct_pairs() {
        let mut oracle = GroundTruthOracle::new();
        let a = pair(1, 0.9, true);
        let b = pair(2, 0.1, false);
        assert_eq!(oracle.label(&a), Label::Match);
        assert_eq!(oracle.label(&b), Label::Unmatch);
        assert_eq!(oracle.label(&a), Label::Match);
        assert_eq!(oracle.labels_issued(), 2);
    }

    #[test]
    fn label_batch_default_matches_sequential_labeling_and_order() {
        let mut batched = GroundTruthOracle::new();
        let mut sequential = GroundTruthOracle::new();
        let pairs: Vec<InstancePair> = (0..20).map(|i| pair(i, 0.5, i % 3 == 0)).collect();
        let refs: Vec<&InstancePair> = pairs.iter().collect();
        let batch_labels = batched.label_batch(&refs);
        let seq_labels: Vec<Label> = pairs.iter().map(|p| sequential.label(p)).collect();
        assert_eq!(batch_labels, seq_labels);
        assert_eq!(batched.labels_issued(), sequential.labels_issued());
    }

    #[test]
    fn noisy_oracle_is_consistent_per_pair() {
        let mut oracle = NoisyOracle::new(0.5, 3);
        let a = pair(7, 0.5, true);
        let first = oracle.label(&a);
        for _ in 0..10 {
            assert_eq!(oracle.label(&a), first);
        }
        assert_eq!(oracle.labels_issued(), 1);
    }

    #[test]
    fn noisy_oracle_with_zero_error_matches_ground_truth() {
        let mut oracle = NoisyOracle::new(0.0, 3);
        for i in 0..100 {
            let p = pair(i, 0.5, i % 3 == 0);
            assert_eq!(oracle.label(&p), p.ground_truth());
        }
    }

    #[test]
    fn noisy_oracle_error_rate_is_roughly_respected() {
        let mut oracle = NoisyOracle::new(0.2, 5);
        let mut errors = 0;
        let n = 5_000;
        for i in 0..n {
            let p = pair(i, 0.5, i % 2 == 0);
            if oracle.label(&p) != p.ground_truth() {
                errors += 1;
            }
        }
        let rate = errors as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.03, "observed error rate {rate}");
    }

    #[test]
    fn noisy_oracle_labels_are_independent_of_query_order() {
        // The same pairs asked in forward, reverse and interleaved order — and
        // as one batch — must receive identical labels. This is the invariant
        // batched/parallel dispatch relies on: arrival order is
        // nondeterministic, the labels must not be.
        let pairs: Vec<InstancePair> = (0..500).map(|i| pair(i, 0.5, i % 2 == 0)).collect();
        let forward: BTreeMap<PairId, Label> = {
            let mut oracle = NoisyOracle::new(0.3, 17);
            pairs.iter().map(|p| (p.id(), oracle.label(p))).collect()
        };
        let reversed: BTreeMap<PairId, Label> = {
            let mut oracle = NoisyOracle::new(0.3, 17);
            pairs.iter().rev().map(|p| (p.id(), oracle.label(p))).collect()
        };
        let interleaved: BTreeMap<PairId, Label> = {
            let mut oracle = NoisyOracle::new(0.3, 17);
            let (evens, odds): (Vec<_>, Vec<_>) = pairs.iter().partition(|p| p.id().0 % 2 == 0);
            odds.into_iter().chain(evens).map(|p| (p.id(), oracle.label(p))).collect()
        };
        let batched: BTreeMap<PairId, Label> = {
            let mut oracle = NoisyOracle::new(0.3, 17);
            let refs: Vec<&InstancePair> = pairs.iter().collect();
            pairs.iter().map(InstancePair::id).zip(oracle.label_batch(&refs)).collect()
        };
        assert_eq!(forward, reversed);
        assert_eq!(forward, interleaved);
        assert_eq!(forward, batched);
        // Different seeds still produce different flip patterns.
        let other_seed: BTreeMap<PairId, Label> = {
            let mut oracle = NoisyOracle::new(0.3, 18);
            pairs.iter().map(|p| (p.id(), oracle.label(p))).collect()
        };
        assert_ne!(forward, other_seed);
    }

    #[test]
    #[should_panic(expected = "error rate")]
    fn noisy_oracle_rejects_invalid_error_rate() {
        let _ = NoisyOracle::new(1.5, 1);
    }

    /// The historical flip function, verbatim: the SplitMix64 finalizer over
    /// `seed ^ (pair * golden_gamma)`. `NoisyOracle` now delegates to
    /// `er_crowd::WorkerModel`, and this test pins that the delegation is
    /// byte-identical — same seeds, same flips — across batch permutations.
    #[test]
    fn flip_decisions_are_pinned_to_the_splitmix64_draw() {
        fn legacy_unit_draw(seed: u64, pair: PairId) -> f64 {
            let mut z = seed ^ pair.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
        let legacy_label = |error_rate: f64, seed: u64, p: &InstancePair| {
            if legacy_unit_draw(seed, p.id()) < error_rate {
                match p.ground_truth() {
                    Label::Match => Label::Unmatch,
                    Label::Unmatch => Label::Match,
                }
            } else {
                p.ground_truth()
            }
        };
        let pairs: Vec<InstancePair> =
            (0..2_000u64).map(|i| pair(i.wrapping_mul(0x51_7C_C1), 0.5, i % 3 == 0)).collect();
        for (error_rate, seed) in [(0.2, 5u64), (0.3, 17), (0.01, 0), (0.5, u64::MAX)] {
            let expected: Vec<Label> =
                pairs.iter().map(|p| legacy_label(error_rate, seed, p)).collect();
            // One at a time, forward.
            let mut oracle = NoisyOracle::new(error_rate, seed);
            let forward: Vec<Label> = pairs.iter().map(|p| oracle.label(p)).collect();
            assert_eq!(forward, expected);
            // Reverse order, then read back forward.
            let mut oracle = NoisyOracle::new(error_rate, seed);
            for p in pairs.iter().rev() {
                oracle.label(p);
            }
            let reversed: Vec<Label> = pairs.iter().map(|p| oracle.label(p)).collect();
            assert_eq!(reversed, expected);
            // Two interleaved batches.
            let mut oracle = NoisyOracle::new(error_rate, seed);
            let (evens, odds): (Vec<_>, Vec<_>) = pairs.iter().partition(|p| p.id().0 % 2 == 0);
            oracle.label_batch(&odds);
            oracle.label_batch(&evens);
            let batched: Vec<Label> = pairs.iter().map(|p| oracle.label(p)).collect();
            assert_eq!(batched, expected);
        }
    }
}
