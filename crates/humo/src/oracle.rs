//! The human oracle: the source of manual labels, with cost accounting.
//!
//! The paper quantifies human cost as "the number of manually inspected instance
//! pairs". Every optimizer in this crate therefore routes all of its manual
//! labelling — interval verification in BASE/HYBR, subset sampling in SAMP, and
//! the final verification of the human region `DH` — through an [`Oracle`], which
//! deduplicates repeated requests for the same pair and reports the number of
//! distinct pairs inspected.
//!
//! Two oracles are provided:
//!
//! * [`GroundTruthOracle`] — the paper's operating assumption (Section IV-A):
//!   manual labels are 100 % accurate;
//! * [`NoisyOracle`] — flips each label with a configurable probability (but
//!   answers consistently when asked about the same pair twice), used by the
//!   failure-injection tests to study what happens when the human is imperfect.

use er_core::workload::{InstancePair, Label, PairId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A source of manual labels with cost accounting.
pub trait Oracle {
    /// Manually labels an instance pair. Asking about the same pair twice must
    /// not increase the reported cost.
    fn label(&mut self, pair: &InstancePair) -> Label;

    /// Number of *distinct* pairs labeled so far — the human cost.
    fn labels_issued(&self) -> usize;
}

/// A perfect human: returns the ground-truth label of every pair.
#[derive(Debug, Clone, Default)]
pub struct GroundTruthOracle {
    labeled: BTreeMap<PairId, Label>,
}

impl GroundTruthOracle {
    /// Creates a fresh oracle with zero cost.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Oracle for GroundTruthOracle {
    fn label(&mut self, pair: &InstancePair) -> Label {
        *self.labeled.entry(pair.id()).or_insert_with(|| pair.ground_truth())
    }

    fn labels_issued(&self) -> usize {
        self.labeled.len()
    }
}

/// An imperfect human: flips the ground-truth label with probability `error_rate`,
/// but always answers consistently for the same pair.
#[derive(Debug, Clone)]
pub struct NoisyOracle {
    error_rate: f64,
    rng: StdRng,
    labeled: BTreeMap<PairId, Label>,
}

impl NoisyOracle {
    /// Creates a noisy oracle with the given per-pair error probability.
    ///
    /// # Panics
    /// Panics if `error_rate` is not in `[0, 1]`.
    pub fn new(error_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&error_rate), "error rate must be in [0,1], got {error_rate}");
        Self { error_rate, rng: StdRng::seed_from_u64(seed), labeled: BTreeMap::new() }
    }

    /// The configured error rate.
    pub fn error_rate(&self) -> f64 {
        self.error_rate
    }
}

impl Oracle for NoisyOracle {
    fn label(&mut self, pair: &InstancePair) -> Label {
        let error_rate = self.error_rate;
        let rng = &mut self.rng;
        *self.labeled.entry(pair.id()).or_insert_with(|| {
            let truth = pair.ground_truth();
            if rng.gen_range(0.0..1.0) < error_rate {
                match truth {
                    Label::Match => Label::Unmatch,
                    Label::Unmatch => Label::Match,
                }
            } else {
                truth
            }
        })
    }

    fn labels_issued(&self) -> usize {
        self.labeled.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::workload::{InstancePair, PairId};

    fn pair(id: u64, sim: f64, is_match: bool) -> InstancePair {
        InstancePair::new(PairId(id), sim, Label::from_bool(is_match))
    }

    #[test]
    fn ground_truth_oracle_returns_truth_and_counts_distinct_pairs() {
        let mut oracle = GroundTruthOracle::new();
        let a = pair(1, 0.9, true);
        let b = pair(2, 0.1, false);
        assert_eq!(oracle.label(&a), Label::Match);
        assert_eq!(oracle.label(&b), Label::Unmatch);
        assert_eq!(oracle.label(&a), Label::Match);
        assert_eq!(oracle.labels_issued(), 2);
    }

    #[test]
    fn noisy_oracle_is_consistent_per_pair() {
        let mut oracle = NoisyOracle::new(0.5, 3);
        let a = pair(7, 0.5, true);
        let first = oracle.label(&a);
        for _ in 0..10 {
            assert_eq!(oracle.label(&a), first);
        }
        assert_eq!(oracle.labels_issued(), 1);
    }

    #[test]
    fn noisy_oracle_with_zero_error_matches_ground_truth() {
        let mut oracle = NoisyOracle::new(0.0, 3);
        for i in 0..100 {
            let p = pair(i, 0.5, i % 3 == 0);
            assert_eq!(oracle.label(&p), p.ground_truth());
        }
    }

    #[test]
    fn noisy_oracle_error_rate_is_roughly_respected() {
        let mut oracle = NoisyOracle::new(0.2, 5);
        let mut errors = 0;
        let n = 5_000;
        for i in 0..n {
            let p = pair(i, 0.5, i % 2 == 0);
            if oracle.label(&p) != p.ground_truth() {
                errors += 1;
            }
        }
        let rate = errors as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.03, "observed error rate {rate}");
    }

    #[test]
    #[should_panic(expected = "error rate")]
    fn noisy_oracle_rejects_invalid_error_rate() {
        let _ = NoisyOracle::new(1.5, 1);
    }
}
