//! The common interface implemented by all HUMO optimizers.

use crate::oracle::Oracle;
use crate::solution::OptimizationOutcome;
use crate::Result;
use er_core::workload::Workload;

/// A HUMO optimizer: searches for a low-human-cost partition of a workload that
/// satisfies the configured quality requirement.
pub trait Optimizer {
    /// Runs the optimization, drawing all manual labels from `oracle`, and returns
    /// the resolved outcome (partition, labels, achieved quality and human cost).
    ///
    /// Every implementation in this crate is a thin driver loop over the
    /// optimizer's sans-I/O [`LabelingSession`](crate::LabelingSession): the
    /// session emits batched label requests and this method answers them
    /// synchronously through [`crate::Oracle::label_batch`].
    /// Systems whose labels arrive asynchronously (crowdsourcing, labeling
    /// UIs, queues) should use the session API directly — each optimizer
    /// exposes a `session(workload)` constructor.
    fn optimize(&self, workload: &Workload, oracle: &mut dyn Oracle)
        -> Result<OptimizationOutcome>;

    /// A short human-readable name (used by the experiment harness and logs).
    fn name(&self) -> &'static str;
}

/// Enumeration of the optimizer families described in the paper, used by the
/// experiment harness to select implementations by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptimizerKind {
    /// The conservative baseline of Section V ("BASE").
    Baseline,
    /// The all-sampling solution of Section VI-A.
    AllSampling,
    /// The partial-sampling solution of Section VI-B ("SAMP").
    PartialSampling,
    /// The hybrid approach of Section VII ("HYBR").
    Hybrid,
}

impl OptimizerKind {
    /// All optimizer kinds, in the paper's presentation order.
    pub fn all() -> [OptimizerKind; 4] {
        [
            OptimizerKind::Baseline,
            OptimizerKind::AllSampling,
            OptimizerKind::PartialSampling,
            OptimizerKind::Hybrid,
        ]
    }

    /// The abbreviation used in the paper's tables and figures.
    pub fn label(&self) -> &'static str {
        match self {
            OptimizerKind::Baseline => "BASE",
            OptimizerKind::AllSampling => "ALL-SAMP",
            OptimizerKind::PartialSampling => "SAMP",
            OptimizerKind::Hybrid => "HYBR",
        }
    }
}

impl std::fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(OptimizerKind::Baseline.label(), "BASE");
        assert_eq!(OptimizerKind::PartialSampling.label(), "SAMP");
        assert_eq!(OptimizerKind::Hybrid.label(), "HYBR");
        assert_eq!(format!("{}", OptimizerKind::AllSampling), "ALL-SAMP");
    }
}
