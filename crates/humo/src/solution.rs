//! HUMO solutions and optimization outcomes.
//!
//! A [`HumoSolution`] is the pair of boundary positions `(v⁻, v⁺)` expressed as
//! indices into the similarity-sorted workload: everything below the lower index
//! is `D⁻` (machine-labeled unmatch), everything at or above the upper index is
//! `D⁺` (machine-labeled match) and the half-open range in between is `DH`, the
//! region handed to the human.

use crate::oracle::Oracle;
use crate::Result;
use er_core::workload::{Label, LabelAssignment, QualityMetrics, Workload};

/// A HUMO partition of a workload, expressed as workload indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HumoSolution {
    /// First index of the human region `DH` (also the exclusive end of `D⁻`).
    pub lower_index: usize,
    /// Exclusive end of the human region `DH` (also the first index of `D⁺`).
    pub upper_index: usize,
}

impl HumoSolution {
    /// Creates a solution, clamping and ordering the indices against the workload size.
    pub fn new(lower_index: usize, upper_index: usize, workload_len: usize) -> Self {
        let lower = lower_index.min(workload_len);
        let upper = upper_index.clamp(lower, workload_len);
        Self { lower_index: lower, upper_index: upper }
    }

    /// The solution that assigns the entire workload to the human (`DH = D`).
    pub fn all_human(workload_len: usize) -> Self {
        Self { lower_index: 0, upper_index: workload_len }
    }

    /// The solution that assigns nothing to the human and splits `D⁻`/`D⁺` at the
    /// given index (a pure machine threshold classifier).
    pub fn machine_only(threshold_index: usize, workload_len: usize) -> Self {
        let t = threshold_index.min(workload_len);
        Self { lower_index: t, upper_index: t }
    }

    /// Number of pairs in `D⁻`.
    pub fn machine_negative_size(&self) -> usize {
        self.lower_index
    }

    /// Number of pairs in `DH` — the verification part of the human cost.
    pub fn human_region_size(&self) -> usize {
        self.upper_index - self.lower_index
    }

    /// Number of pairs in `D⁺` given the workload length.
    pub fn machine_positive_size(&self, workload_len: usize) -> usize {
        workload_len - self.upper_index
    }

    /// The index range of the human region.
    pub fn human_range(&self) -> std::ops::Range<usize> {
        self.lower_index..self.upper_index
    }

    /// The similarity interval `[v⁻, v⁺]` covered by the human region, if it is
    /// non-empty.
    pub fn human_similarity_interval(&self, workload: &Workload) -> Option<(f64, f64)> {
        if self.human_region_size() == 0 || workload.is_empty() {
            return None;
        }
        Some((
            workload.similarity_at(self.lower_index),
            workload.similarity_at(self.upper_index - 1),
        ))
    }

    /// Resolves the workload under this solution: `D⁻` is labeled unmatch, `D⁺`
    /// match, and every pair of `DH` is labeled by the oracle (counting towards
    /// its cost).
    pub fn resolve(&self, workload: &Workload, oracle: &mut dyn Oracle) -> LabelAssignment {
        self.resolve_from_labels(workload, |idx| oracle.label(workload.pair(idx)))
    }

    /// Resolves the workload under this solution from an arbitrary label
    /// source: `lookup` is called once per `DH` index (in ascending order) and
    /// must return the manual label for that pair. This is the
    /// final-verification path of the sans-I/O labeling sessions, which read
    /// the labels from their answered-response log instead of an oracle.
    pub fn resolve_from_labels(
        &self,
        workload: &Workload,
        mut lookup: impl FnMut(usize) -> Label,
    ) -> LabelAssignment {
        let mut assignment = LabelAssignment::all_unmatch(workload.len());
        for idx in self.human_range() {
            assignment.set(idx, lookup(idx));
        }
        for idx in self.upper_index..workload.len() {
            assignment.set(idx, Label::Match);
        }
        assignment
    }
}

/// The result of running a HUMO optimizer on a workload.
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    /// The chosen partition.
    pub solution: HumoSolution,
    /// The final label assignment (machine labels plus oracle labels on `DH`).
    pub assignment: LabelAssignment,
    /// Achieved quality against the ground truth.
    pub metrics: QualityMetrics,
    /// Number of pairs in `DH` (manual verification cost).
    pub verification_cost: usize,
    /// Distinct manually labeled pairs that ended up *outside* `DH` (sampling /
    /// estimation overhead).
    pub sampling_cost: usize,
    /// Total human cost: distinct pairs labeled by the oracle over the whole run.
    pub total_human_cost: usize,
}

impl OptimizationOutcome {
    /// Assembles an outcome by resolving the solution and reading the oracle's
    /// final cost counter.
    pub fn from_solution(
        solution: HumoSolution,
        workload: &Workload,
        oracle: &mut dyn Oracle,
    ) -> Result<Self> {
        let labels_before_outside = oracle.labels_issued();
        let assignment = solution.resolve(workload, oracle);
        let metrics = workload.evaluate(&assignment)?;
        let total_human_cost = oracle.labels_issued();
        let verification_cost = solution.human_region_size();
        // Pairs labeled during the search that are outside the final DH: the total
        // cost minus everything inside DH. (Labels inside DH are counted once no
        // matter whether they were first requested during the search or during the
        // final resolution.)
        let sampling_cost = total_human_cost.saturating_sub(verification_cost);
        let _ = labels_before_outside;
        Ok(Self {
            solution,
            assignment,
            metrics,
            verification_cost,
            sampling_cost,
            total_human_cost,
        })
    }

    /// Human cost as a fraction of the workload size (the "percentage of manual
    /// work" reported throughout the paper's evaluation).
    pub fn human_cost_fraction(&self, workload_len: usize) -> f64 {
        if workload_len == 0 {
            0.0
        } else {
            self.total_human_cost as f64 / workload_len as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;

    fn workload() -> Workload {
        // 10 pairs, matches at high similarity plus one low-similarity match.
        Workload::from_scores(vec![
            (0.05, false),
            (0.15, true),
            (0.25, false),
            (0.35, false),
            (0.45, false),
            (0.55, true),
            (0.65, false),
            (0.75, true),
            (0.85, true),
            (0.95, true),
        ])
        .unwrap()
    }

    #[test]
    fn new_clamps_and_orders_indices() {
        let s = HumoSolution::new(8, 3, 10);
        assert_eq!(s.lower_index, 8);
        assert_eq!(s.upper_index, 8);
        let s = HumoSolution::new(3, 99, 10);
        assert_eq!(s.upper_index, 10);
    }

    #[test]
    fn region_sizes_add_up() {
        let s = HumoSolution::new(2, 7, 10);
        assert_eq!(s.machine_negative_size(), 2);
        assert_eq!(s.human_region_size(), 5);
        assert_eq!(s.machine_positive_size(10), 3);
        assert_eq!(
            s.machine_negative_size() + s.human_region_size() + s.machine_positive_size(10),
            10
        );
    }

    #[test]
    fn similarity_interval_reflects_boundaries() {
        let w = workload();
        let s = HumoSolution::new(2, 7, w.len());
        let (lo, hi) = s.human_similarity_interval(&w).unwrap();
        assert!((lo - 0.25).abs() < 1e-12);
        assert!((hi - 0.65).abs() < 1e-12);
        assert!(HumoSolution::machine_only(5, w.len()).human_similarity_interval(&w).is_none());
    }

    #[test]
    fn resolve_labels_regions_correctly() {
        let w = workload();
        let s = HumoSolution::new(3, 7, w.len());
        let mut oracle = GroundTruthOracle::new();
        let assignment = s.resolve(&w, &mut oracle);
        // D-: indices 0..3 unmatch.
        assert!(!assignment.labels()[0].is_match());
        // a missed low-similarity match
        assert!(!assignment.labels()[1].is_match());
        // DH: oracle labels match the ground truth.
        assert!(assignment.labels()[5].is_match());
        assert!(!assignment.labels()[6].is_match());
        // D+: all match.
        assert!(assignment.labels()[8].is_match());
        assert_eq!(oracle.labels_issued(), 4);
    }

    #[test]
    fn all_human_solution_achieves_perfect_quality() {
        let w = workload();
        let mut oracle = GroundTruthOracle::new();
        let outcome =
            OptimizationOutcome::from_solution(HumoSolution::all_human(w.len()), &w, &mut oracle)
                .unwrap();
        assert_eq!(outcome.metrics.precision(), 1.0);
        assert_eq!(outcome.metrics.recall(), 1.0);
        assert_eq!(outcome.total_human_cost, w.len());
        assert_eq!(outcome.verification_cost, w.len());
        assert_eq!(outcome.sampling_cost, 0);
        assert!((outcome.human_cost_fraction(w.len()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn machine_only_solution_has_zero_human_cost() {
        let w = workload();
        let mut oracle = GroundTruthOracle::new();
        let outcome = OptimizationOutcome::from_solution(
            HumoSolution::machine_only(5, w.len()),
            &w,
            &mut oracle,
        )
        .unwrap();
        assert_eq!(outcome.total_human_cost, 0);
        assert_eq!(outcome.verification_cost, 0);
        // The pure machine threshold misses the low-similarity match.
        assert!(outcome.metrics.recall() < 1.0);
    }

    #[test]
    fn sampling_cost_counts_labels_outside_dh() {
        let w = workload();
        let mut oracle = GroundTruthOracle::new();
        // Simulate a search that sampled two pairs outside the final DH.
        oracle.label(w.pair(0));
        oracle.label(w.pair(9));
        let outcome =
            OptimizationOutcome::from_solution(HumoSolution::new(4, 7, w.len()), &w, &mut oracle)
                .unwrap();
        assert_eq!(outcome.verification_cost, 3);
        assert_eq!(outcome.sampling_cost, 2);
        assert_eq!(outcome.total_human_cost, 5);
    }
}
