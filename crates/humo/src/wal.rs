//! Write-ahead label logs: the versioned `HAL1` on-disk format for answered
//! labels and session configurations, plus the [`DurableSession`] wrapper
//! that makes a [`LabelingSession`] crash-safe.
//!
//! Manual labels are the one irreplaceable (and billable) resource in the
//! whole framework, and [`SessionState::answered_log`] is a complete
//! checkpoint: the same configuration, workload and warm start plus the log
//! replay to the same outcome. This module persists exactly those inputs,
//! append-only, flushed and fsynced *before* the labels are replayed — so a
//! process killed at any instant never re-buys a label.
//!
//! # The `HAL1` byte format
//!
//! Like its siblings `HSG1`/`HPG1` (see [`er_core::spill`]), `HAL1` is a
//! hand-rolled, documented, little-endian format with FNV-1a checksums — no
//! serde in the offline build environment. Unlike them it is an *append log*,
//! not a chunk store: records are discovered by scanning, and a file whose
//! last append was torn by a crash is readable up to the last complete frame.
//!
//! ```text
//! magic   4 bytes  "HAL1"
//! frame   ×        one per record, concatenated:
//!   body_len    u32   length of `body`
//!   head_check  u32   low 32 bits of FNV-1a over the 4 `body_len` bytes
//!   body        body_len bytes = payload ++ FNV-1a-64(payload)
//! ```
//!
//! (the frame layer is [`er_core::codec::frame`] / [`er_core::codec::FrameScan`]).
//! A torn tail — the file ends mid-frame — truncates cleanly on recovery;
//! corruption *inside* a complete frame (header check or body checksum
//! mismatch) is a [`HumoError::Wal`], never a panic or a silently wrong
//! label. Each payload is a tagged record:
//!
//! ```text
//! kind    u8
//! 0 = SessionBegin:
//!     workload_len  u64     sanity check against the resuming workload
//!     config        …       SessionConfig (below)
//!     has_warm      u8      1 ⇒ followed by a WarmStart
//! 1 = Labels:
//!     count         u32
//!     entry         count × { pair_id u64, label u8 (1 = match, 0 = unmatch) }
//! 2 = Commit:
//!     has_warm      u8      1 ⇒ followed by the WarmStart for the next epoch
//! ```
//!
//! `SessionConfig` is a tagged union (`0` BASE, `1` ALL, `2` SAMP, `3` HYBR,
//! `4` all-human) of the plain config structs; every `f64` is stored as
//! `f64::to_bits`, every `usize` widened to `u64`, every `bool`/enum as one
//! byte, making round trips bit-exact. A `WarmStart` is its observation list
//! (`count u32`, then `{ similarity u64-bits, sample_size u64, positives
//! u64 }` each) plus the optional human interval (`has u8`, two `f64`-bits).
//!
//! # Log grammar
//!
//! A well-formed log is `SessionBegin (Labels)* (Commit)?`, repeated — one
//! group per epoch when an engine logs several sessions into one file (see
//! `er_pipeline::ResolutionEngine::attach_wal`). [`WalWriter`] does not
//! enforce the grammar (it appends what it is told); readers do.

use crate::sampling::{
    AllSamplingConfig, PartialSamplingConfig, PriorObservation, RefitStrategy, ShortfallBaseline,
    TailCalibration, WarmStart,
};
use crate::session::{LabelResponse, LabelingSession, SessionState, Step};
use crate::{
    BaselineConfig, HumoError, HybridConfig, InitialBoundary, QualityRequirement, Result,
    SessionConfig,
};
use er_core::codec::{frame, ByteReader, ByteWriter, FrameScan};
use er_core::workload::{Label, PairId, Workload};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// The 4-byte magic that opens every `HAL1` file.
pub const HAL1_MAGIC: &[u8; 4] = b"HAL1";

fn wal_err(context: &str, e: impl std::fmt::Display) -> HumoError {
    HumoError::Wal(format!("{context}: {e}"))
}

/// One record of a `HAL1` write-ahead label log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A session started: its full configuration, the workload size it ran
    /// over (a cheap wrong-workload guard on resume) and its warm start.
    SessionBegin {
        /// `workload.len()` of the session's workload.
        workload_len: u64,
        /// The optimizer configuration the session runs.
        config: SessionConfig,
        /// The warm start the session was seeded with, if any.
        warm: Option<WarmStart>,
    },
    /// A batch of newly absorbed answered labels, in answered-log order.
    Labels(Vec<LabelResponse>),
    /// The session completed; carries the warm start it produced for the
    /// next epoch, if any.
    Commit {
        /// Warm-start state handed to the next epoch.
        warm: Option<WarmStart>,
    },
}

const KIND_SESSION_BEGIN: u8 = 0;
const KIND_LABELS: u8 = 1;
const KIND_COMMIT: u8 = 2;

fn put_f64(w: &mut ByteWriter, v: f64) {
    w.put_u64(v.to_bits());
}

fn take_f64(r: &mut ByteReader<'_>) -> Result<f64> {
    Ok(f64::from_bits(r.take_u64().map_err(|e| wal_err("decode f64", e))?))
}

fn take_u8(r: &mut ByteReader<'_>) -> Result<u8> {
    r.take_u8().map_err(|e| wal_err("decode u8", e))
}

fn take_u32(r: &mut ByteReader<'_>) -> Result<u32> {
    r.take_u32().map_err(|e| wal_err("decode u32", e))
}

fn take_u64(r: &mut ByteReader<'_>) -> Result<u64> {
    r.take_u64().map_err(|e| wal_err("decode u64", e))
}

fn take_usize(r: &mut ByteReader<'_>) -> Result<usize> {
    usize::try_from(take_u64(r)?).map_err(|e| wal_err("usize overflow", e))
}

fn take_bool(r: &mut ByteReader<'_>) -> Result<bool> {
    match take_u8(r)? {
        0 => Ok(false),
        1 => Ok(true),
        v => Err(HumoError::Wal(format!("invalid boolean byte {v:#x}"))),
    }
}

fn put_requirement(w: &mut ByteWriter, req: &QualityRequirement) {
    put_f64(w, req.precision());
    put_f64(w, req.recall());
    put_f64(w, req.confidence());
}

fn take_requirement(r: &mut ByteReader<'_>) -> Result<QualityRequirement> {
    let precision = take_f64(r)?;
    let recall = take_f64(r)?;
    let confidence = take_f64(r)?;
    QualityRequirement::new(precision, recall, confidence)
        .map_err(|e| wal_err("decoded requirement is invalid", e))
}

fn put_tail_calibration(w: &mut ByteWriter, tc: &TailCalibration) {
    w.put_u8(tc.enabled as u8);
    put_f64(w, tc.distance_strength);
    w.put_u8(tc.calibrate_lower as u8);
    w.put_u8(match tc.shortfall_baseline {
        ShortfallBaseline::Estimate => 0,
        ShortfallBaseline::UpperBound => 1,
    });
    put_f64(w, tc.quiet_fraction);
}

fn take_tail_calibration(r: &mut ByteReader<'_>) -> Result<TailCalibration> {
    let enabled = take_bool(r)?;
    let distance_strength = take_f64(r)?;
    let calibrate_lower = take_bool(r)?;
    let shortfall_baseline = match take_u8(r)? {
        0 => ShortfallBaseline::Estimate,
        1 => ShortfallBaseline::UpperBound,
        v => return Err(HumoError::Wal(format!("invalid shortfall-baseline tag {v:#x}"))),
    };
    let quiet_fraction = take_f64(r)?;
    Ok(TailCalibration {
        enabled,
        distance_strength,
        calibrate_lower,
        shortfall_baseline,
        quiet_fraction,
    })
}

fn put_partial_sampling(w: &mut ByteWriter, cfg: &PartialSamplingConfig) {
    put_requirement(w, &cfg.requirement);
    w.put_u64(cfg.unit_size as u64);
    w.put_u64(cfg.samples_per_subset as u64);
    put_f64(w, cfg.sampling_range.0);
    put_f64(w, cfg.sampling_range.1);
    put_f64(w, cfg.gp_error_threshold);
    w.put_u8(cfg.conservative_noise as u8);
    put_tail_calibration(w, &cfg.tail_calibration);
    w.put_u8(match cfg.refit {
        RefitStrategy::Incremental => 0,
        RefitStrategy::Full => 1,
    });
    w.put_u64(cfg.seed);
}

fn take_partial_sampling(r: &mut ByteReader<'_>) -> Result<PartialSamplingConfig> {
    let requirement = take_requirement(r)?;
    let unit_size = take_usize(r)?;
    let samples_per_subset = take_usize(r)?;
    let sampling_range = (take_f64(r)?, take_f64(r)?);
    let gp_error_threshold = take_f64(r)?;
    let conservative_noise = take_bool(r)?;
    let tail_calibration = take_tail_calibration(r)?;
    let refit = match take_u8(r)? {
        0 => RefitStrategy::Incremental,
        1 => RefitStrategy::Full,
        v => return Err(HumoError::Wal(format!("invalid refit-strategy tag {v:#x}"))),
    };
    let seed = take_u64(r)?;
    Ok(PartialSamplingConfig {
        requirement,
        unit_size,
        samples_per_subset,
        sampling_range,
        gp_error_threshold,
        conservative_noise,
        tail_calibration,
        refit,
        seed,
    })
}

fn put_session_config(w: &mut ByteWriter, config: &SessionConfig) {
    match config {
        SessionConfig::Baseline(cfg) => {
            w.put_u8(0);
            put_requirement(w, &cfg.requirement);
            w.put_u64(cfg.unit_size as u64);
            w.put_u64(cfg.estimation_units as u64);
            match cfg.initial_boundary {
                InitialBoundary::Similarity(v) => {
                    w.put_u8(0);
                    put_f64(w, v);
                }
                InitialBoundary::MedianIndex => w.put_u8(1),
                InitialBoundary::Index(i) => {
                    w.put_u8(2);
                    w.put_u64(i as u64);
                }
            }
        }
        SessionConfig::AllSampling(cfg) => {
            w.put_u8(1);
            put_requirement(w, &cfg.requirement);
            w.put_u64(cfg.unit_size as u64);
            w.put_u64(cfg.samples_per_subset as u64);
            put_tail_calibration(w, &cfg.tail_calibration);
            w.put_u64(cfg.seed);
        }
        SessionConfig::PartialSampling(cfg) => {
            w.put_u8(2);
            put_partial_sampling(w, cfg);
        }
        SessionConfig::Hybrid(cfg) => {
            w.put_u8(3);
            put_partial_sampling(w, &cfg.sampling);
            w.put_u64(cfg.estimation_units as u64);
        }
        SessionConfig::AllHuman => w.put_u8(4),
    }
}

fn take_session_config(r: &mut ByteReader<'_>) -> Result<SessionConfig> {
    match take_u8(r)? {
        0 => {
            let requirement = take_requirement(r)?;
            let unit_size = take_usize(r)?;
            let estimation_units = take_usize(r)?;
            let initial_boundary = match take_u8(r)? {
                0 => InitialBoundary::Similarity(take_f64(r)?),
                1 => InitialBoundary::MedianIndex,
                2 => InitialBoundary::Index(take_usize(r)?),
                v => return Err(HumoError::Wal(format!("invalid initial-boundary tag {v:#x}"))),
            };
            Ok(SessionConfig::Baseline(BaselineConfig {
                requirement,
                unit_size,
                estimation_units,
                initial_boundary,
            }))
        }
        1 => {
            let requirement = take_requirement(r)?;
            let unit_size = take_usize(r)?;
            let samples_per_subset = take_usize(r)?;
            let tail_calibration = take_tail_calibration(r)?;
            let seed = take_u64(r)?;
            Ok(SessionConfig::AllSampling(AllSamplingConfig {
                requirement,
                unit_size,
                samples_per_subset,
                tail_calibration,
                seed,
            }))
        }
        2 => Ok(SessionConfig::PartialSampling(take_partial_sampling(r)?)),
        3 => {
            let sampling = take_partial_sampling(r)?;
            let estimation_units = take_usize(r)?;
            Ok(SessionConfig::Hybrid(HybridConfig { sampling, estimation_units }))
        }
        4 => Ok(SessionConfig::AllHuman),
        v => Err(HumoError::Wal(format!("invalid session-config tag {v:#x}"))),
    }
}

fn put_warm_start(w: &mut ByteWriter, warm: &WarmStart) {
    w.put_u32(warm.observations.len() as u32);
    for obs in &warm.observations {
        put_f64(w, obs.similarity);
        w.put_u64(obs.sample_size as u64);
        w.put_u64(obs.positives as u64);
    }
    match warm.human_interval {
        Some((lo, hi)) => {
            w.put_u8(1);
            put_f64(w, lo);
            put_f64(w, hi);
        }
        None => w.put_u8(0),
    }
}

fn take_warm_start(r: &mut ByteReader<'_>) -> Result<WarmStart> {
    let count = take_u32(r)? as usize;
    let mut observations = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let similarity = take_f64(r)?;
        let sample_size = take_usize(r)?;
        let positives = take_usize(r)?;
        observations.push(PriorObservation { similarity, sample_size, positives });
    }
    let human_interval = if take_bool(r)? { Some((take_f64(r)?, take_f64(r)?)) } else { None };
    Ok(WarmStart { observations, human_interval })
}

fn put_opt_warm_start(w: &mut ByteWriter, warm: Option<&WarmStart>) {
    match warm {
        Some(warm) => {
            w.put_u8(1);
            put_warm_start(w, warm);
        }
        None => w.put_u8(0),
    }
}

fn take_opt_warm_start(r: &mut ByteReader<'_>) -> Result<Option<WarmStart>> {
    Ok(if take_bool(r)? { Some(take_warm_start(r)?) } else { None })
}

/// Encodes one record as a complete appendable frame (header + checksummed
/// body) — the exact bytes [`WalWriter::append`] writes.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(64);
    match record {
        WalRecord::SessionBegin { workload_len, config, warm } => {
            w.put_u8(KIND_SESSION_BEGIN);
            w.put_u64(*workload_len);
            put_session_config(&mut w, config);
            put_opt_warm_start(&mut w, warm.as_ref());
        }
        WalRecord::Labels(responses) => {
            w.put_u8(KIND_LABELS);
            w.put_u32(responses.len() as u32);
            for response in responses {
                w.put_u64(response.pair_id.0);
                w.put_u8(response.label.is_match() as u8);
            }
        }
        WalRecord::Commit { warm } => {
            w.put_u8(KIND_COMMIT);
            put_opt_warm_start(&mut w, warm.as_ref());
        }
    }
    frame(&w.finish())
}

fn decode_record(r: &mut ByteReader<'_>) -> Result<WalRecord> {
    match take_u8(r)? {
        KIND_SESSION_BEGIN => {
            let workload_len = take_u64(r)?;
            let config = take_session_config(r)?;
            let warm = take_opt_warm_start(r)?;
            Ok(WalRecord::SessionBegin { workload_len, config, warm })
        }
        KIND_LABELS => {
            let count = take_u32(r)? as usize;
            let mut responses = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                let pair_id = PairId(take_u64(r)?);
                let label = Label::from_bool(take_bool(r)?);
                responses.push(LabelResponse { pair_id, label });
            }
            Ok(WalRecord::Labels(responses))
        }
        KIND_COMMIT => Ok(WalRecord::Commit { warm: take_opt_warm_start(r)? }),
        v => Err(HumoError::Wal(format!("invalid record kind {v:#x}"))),
    }
}

/// What reading a `HAL1` file (with recovery) produced.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecovery {
    /// Every complete, checksum-verified record, in append order.
    pub records: Vec<WalRecord>,
    /// Whether the file ended in an incomplete frame (a torn append).
    pub torn_tail: bool,
    /// The clean length of the log — past it lie only torn-tail bytes.
    /// Recovery truncates the file back to this offset before appending.
    pub valid_len: u64,
}

/// Decodes a full in-memory `HAL1` image (magic included), recovering from a
/// torn tail. Corruption inside a complete frame is an error.
pub fn decode_log(bytes: &[u8]) -> Result<WalRecovery> {
    if bytes.len() < HAL1_MAGIC.len() {
        // Even the magic was torn: an empty log.
        return Ok(WalRecovery { records: Vec::new(), torn_tail: !bytes.is_empty(), valid_len: 0 });
    }
    if &bytes[..HAL1_MAGIC.len()] != HAL1_MAGIC {
        return Err(HumoError::Wal(format!(
            "bad magic {:02x?} (expected {HAL1_MAGIC:02x?})",
            &bytes[..HAL1_MAGIC.len()]
        )));
    }
    let mut scan = FrameScan::new(&bytes[HAL1_MAGIC.len()..]);
    let mut records = Vec::new();
    loop {
        match scan.next_frame() {
            Ok(Some(mut reader)) => records.push(decode_record(&mut reader)?),
            Ok(None) => break,
            Err(e) => return Err(wal_err("corrupt frame", e)),
        }
    }
    Ok(WalRecovery {
        records,
        torn_tail: scan.torn_tail(),
        valid_len: (HAL1_MAGIC.len() + scan.consumed()) as u64,
    })
}

/// Reads a `HAL1` file with torn-tail recovery, without modifying it.
pub fn read_log(path: impl AsRef<Path>) -> Result<WalRecovery> {
    let bytes = std::fs::read(path.as_ref())
        .map_err(|e| wal_err(&format!("read {}", path.as_ref().display()), e))?;
    decode_log(&bytes)
}

/// An append-only `HAL1` writer. Every [`WalWriter::append`] writes one
/// complete frame and fsyncs before returning: when it comes back `Ok`, the
/// record survives process death.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    appended: u64,
}

impl WalWriter {
    /// Creates (truncating) a fresh log at `path` and durably writes the
    /// magic.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path).map_err(|e| wal_err("create wal", e))?;
        file.write_all(HAL1_MAGIC).map_err(|e| wal_err("write magic", e))?;
        file.sync_data().map_err(|e| wal_err("sync magic", e))?;
        Ok(Self { file, path, appended: 0 })
    }

    /// Opens an existing log for appending, recovering its records first: a
    /// torn tail is truncated away so the next append starts at a clean frame
    /// boundary. Corruption inside a complete frame is an error.
    pub fn recover(path: impl AsRef<Path>) -> Result<(Self, WalRecovery)> {
        let path = path.as_ref().to_path_buf();
        let recovery = read_log(&path)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| wal_err("open wal", e))?;
        file.set_len(recovery.valid_len).map_err(|e| wal_err("truncate torn tail", e))?;
        let mut writer = Self { file, path, appended: 0 };
        if recovery.valid_len < HAL1_MAGIC.len() as u64 {
            // The magic itself was torn: rewrite it.
            writer.file.write_all(HAL1_MAGIC).map_err(|e| wal_err("write magic", e))?;
        } else {
            use std::io::Seek;
            writer.file.seek(std::io::SeekFrom::End(0)).map_err(|e| wal_err("seek to tail", e))?;
        }
        writer.file.sync_data().map_err(|e| wal_err("sync recovery", e))?;
        Ok((writer, recovery))
    }

    /// Appends one record, flushed and fsynced — durable on return.
    /// Returns the number of bytes written.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64> {
        let bytes = encode_record(record);
        self.file.write_all(&bytes).map_err(|e| wal_err("append record", e))?;
        self.file.sync_data().map_err(|e| wal_err("sync record", e))?;
        self.appended += 1;
        Ok(bytes.len() as u64)
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended through this writer (not counting recovered ones).
    pub fn appended(&self) -> u64 {
        self.appended
    }
}

/// A [`LabelingSession`] whose answered log is written ahead to a `HAL1`
/// file: every absorbed response batch is durable *before* it is replayed,
/// and [`DurableSession::resume`] rebuilds the session — mid-flight or
/// completed — from the file alone (plus the workload).
///
/// ```no_run
/// use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};
/// use humo::wal::DurableSession;
/// use humo::{OptimizerKind, QualityRequirement, SessionConfig, Step};
///
/// let workload = SyntheticGenerator::new(SyntheticConfig::new(8_000, 14.0, 0.1)).generate();
/// let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
/// let config = SessionConfig::for_kind(OptimizerKind::Hybrid, requirement);
///
/// let mut session = DurableSession::create(config, &workload, "epoch.hal1").unwrap();
/// // … drive it, crash at any point, then in a new process:
/// let mut resumed = DurableSession::resume(&workload, "epoch.hal1").unwrap();
/// let step = resumed.step(&[]).unwrap(); // picks up exactly where the log ends
/// ```
#[derive(Debug)]
pub struct DurableSession<'w> {
    session: LabelingSession<'w>,
    wal: WalWriter,
    committed: bool,
}

impl<'w> DurableSession<'w> {
    /// Creates a fresh durable session, writing the `SessionBegin` record.
    pub fn create(
        config: SessionConfig,
        workload: &'w Workload,
        path: impl AsRef<Path>,
    ) -> Result<Self> {
        Self::create_with_warm_start(config, workload, None, path)
    }

    /// Creates a fresh warm-started durable session; the warm start is
    /// persisted in the `SessionBegin` record so resume re-seeds it
    /// automatically.
    pub fn create_with_warm_start(
        config: SessionConfig,
        workload: &'w Workload,
        warm: Option<WarmStart>,
        path: impl AsRef<Path>,
    ) -> Result<Self> {
        let session = LabelingSession::with_warm_start(config, workload, warm.clone())?;
        let mut wal = WalWriter::create(path)?;
        wal.append(&WalRecord::SessionBegin { workload_len: workload.len() as u64, config, warm })?;
        Ok(Self { session, wal, committed: false })
    }

    /// Rebuilds a session from its log: the `SessionBegin` record supplies
    /// the configuration and warm start, the `Labels` records replay the
    /// answered log, and a torn tail is truncated away. The file must hold
    /// exactly one session (engines multiplexing epochs use
    /// `er_pipeline::ResolutionEngine::resume`).
    pub fn resume(workload: &'w Workload, path: impl AsRef<Path>) -> Result<Self> {
        let (wal, recovery) = WalWriter::recover(path)?;
        let mut records = recovery.records.into_iter();
        let Some(WalRecord::SessionBegin { workload_len, config, warm }) = records.next() else {
            return Err(HumoError::Wal(
                "log does not start with a SessionBegin record".to_string(),
            ));
        };
        if workload_len != workload.len() as u64 {
            return Err(HumoError::Wal(format!(
                "log was written for a {workload_len}-pair workload, got {} pairs",
                workload.len()
            )));
        }
        let mut log: Vec<LabelResponse> = Vec::new();
        let mut committed = false;
        for record in records {
            match record {
                WalRecord::Labels(responses) => log.extend(responses),
                WalRecord::Commit { .. } => committed = true,
                WalRecord::SessionBegin { .. } => {
                    return Err(HumoError::Wal("log holds more than one session".to_string()))
                }
            }
        }
        let state = SessionState::resume(config, workload, &log)?.with_warm_start(warm);
        let session = LabelingSession::from_state(state, workload);
        Ok(Self { session, wal, committed })
    }

    /// Advances the session durably: the newly absorbed responses are
    /// appended and fsynced *before* the replay consumes them, and completion
    /// appends the `Commit` record. Exactly [`LabelingSession::step`]
    /// semantics otherwise.
    pub fn step(&mut self, responses: &[LabelResponse]) -> Result<Step> {
        let absorbed = self.session.absorb(responses)?.to_vec();
        if !absorbed.is_empty() {
            self.wal.append(&WalRecord::Labels(absorbed))?;
        }
        let step = self.session.poll()?;
        if let Step::Done(_) = &step {
            if !self.committed {
                let warm = self.session.next_warm_start().cloned();
                self.wal.append(&WalRecord::Commit { warm })?;
                self.committed = true;
            }
        }
        Ok(step)
    }

    /// The wrapped session, for inspection.
    pub fn session(&self) -> &LabelingSession<'w> {
        &self.session
    }

    /// The underlying log writer.
    pub fn wal(&self) -> &WalWriter {
        &self.wal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OptimizerKind;
    use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};

    fn workload(n: usize) -> Workload {
        SyntheticGenerator::new(SyntheticConfig {
            num_pairs: n,
            tau: 14.0,
            sigma: 0.1,
            subset_size: 200,
            seed: 7,
        })
        .generate()
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir();
        dir.join(format!(".humo-wal-test-{}-{name}", std::process::id()))
    }

    fn sample_configs() -> Vec<SessionConfig> {
        let requirement = QualityRequirement::new(0.9, 0.85, 0.92).unwrap();
        let mut configs: Vec<SessionConfig> = OptimizerKind::all()
            .iter()
            .map(|&kind| SessionConfig::for_kind(kind, requirement))
            .collect();
        configs.push(SessionConfig::AllHuman);
        // A non-default corner: explicit boundary index, full refits.
        configs.push(SessionConfig::Baseline(BaselineConfig {
            requirement,
            unit_size: 37,
            estimation_units: 2,
            initial_boundary: InitialBoundary::Index(11),
        }));
        let mut samp = PartialSamplingConfig::new(requirement);
        samp.refit = RefitStrategy::Full;
        samp.conservative_noise = true;
        samp.tail_calibration.shortfall_baseline = ShortfallBaseline::UpperBound;
        configs.push(SessionConfig::PartialSampling(samp));
        configs
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        let warm = WarmStart {
            observations: vec![
                PriorObservation { similarity: 0.25, sample_size: 100, positives: 3 },
                PriorObservation { similarity: 0.75, sample_size: 100, positives: 97 },
            ],
            human_interval: Some((0.4, 0.6)),
        };
        let mut records: Vec<WalRecord> = sample_configs()
            .into_iter()
            .enumerate()
            .map(|(i, config)| WalRecord::SessionBegin {
                workload_len: 1000 + i as u64,
                config,
                warm: if i % 2 == 0 { Some(warm.clone()) } else { None },
            })
            .collect();
        records.push(WalRecord::Labels(vec![
            LabelResponse { pair_id: PairId(0), label: Label::Match },
            LabelResponse { pair_id: PairId(u64::MAX - 1), label: Label::Unmatch },
        ]));
        records.push(WalRecord::Labels(Vec::new()));
        records.push(WalRecord::Commit { warm: Some(warm) });
        records.push(WalRecord::Commit { warm: None });

        let mut image = HAL1_MAGIC.to_vec();
        for record in &records {
            image.extend_from_slice(&encode_record(record));
        }
        let recovery = decode_log(&image).unwrap();
        assert!(!recovery.torn_tail);
        assert_eq!(recovery.valid_len, image.len() as u64);
        assert_eq!(recovery.records, records);
    }

    #[test]
    fn wal_writer_appends_and_recovers() {
        let path = temp_path("append");
        let mut writer = WalWriter::create(&path).unwrap();
        let begin = WalRecord::SessionBegin {
            workload_len: 5,
            config: SessionConfig::AllHuman,
            warm: None,
        };
        let labels =
            WalRecord::Labels(vec![LabelResponse { pair_id: PairId(3), label: Label::Match }]);
        writer.append(&begin).unwrap();
        writer.append(&labels).unwrap();
        drop(writer);

        // Clean recovery sees both records and appends cleanly after them.
        let (mut writer, recovery) = WalWriter::recover(&path).unwrap();
        assert_eq!(recovery.records, vec![begin.clone(), labels.clone()]);
        assert!(!recovery.torn_tail);
        writer.append(&WalRecord::Commit { warm: None }).unwrap();
        drop(writer);
        let recovery = read_log(&path).unwrap();
        assert_eq!(recovery.records.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tails_truncate_cleanly_on_recovery() {
        let path = temp_path("torn");
        let mut writer = WalWriter::create(&path).unwrap();
        let begin = WalRecord::SessionBegin {
            workload_len: 5,
            config: SessionConfig::AllHuman,
            warm: None,
        };
        writer.append(&begin).unwrap();
        drop(writer);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a torn append: half a labels record.
        let torn = encode_record(&WalRecord::Labels(vec![LabelResponse {
            pair_id: PairId(1),
            label: Label::Unmatch,
        }]));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let (mut writer, recovery) = WalWriter::recover(&path).unwrap();
        assert!(recovery.torn_tail);
        assert_eq!(recovery.valid_len, clean_len);
        assert_eq!(recovery.records, vec![begin]);
        // The file is physically truncated and the next append reads back.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        writer.append(&WalRecord::Commit { warm: None }).unwrap();
        drop(writer);
        let recovery = read_log(&path).unwrap();
        assert!(!recovery.torn_tail);
        assert_eq!(recovery.records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn durable_session_survives_arbitrary_kill_points() {
        let w = workload(4_000);
        let requirement = QualityRequirement::new(0.85, 0.85, 0.9).unwrap();
        let config = SessionConfig::for_kind(OptimizerKind::PartialSampling, requirement);
        let path = temp_path("durable");

        // Reference: an uninterrupted durable run.
        let mut reference = DurableSession::create(config, &w, &path).unwrap();
        let mut responses = Vec::new();
        let reference_outcome = loop {
            match reference.step(&responses).unwrap() {
                Step::Done(outcome) => break outcome,
                Step::NeedLabels(requests) => {
                    responses = requests
                        .iter()
                        .map(|req| LabelResponse {
                            pair_id: req.pair_id,
                            label: w.pair(req.index).ground_truth(),
                        })
                        .collect();
                }
            }
        };
        let reference_log = reference.session().answered_log().to_vec();
        drop(reference);

        // "Kill" after 2 steps: drop the session object without any shutdown
        // path, then resume purely from the file.
        let mut session = DurableSession::create(config, &w, &path).unwrap();
        let mut responses = Vec::new();
        for _ in 0..2 {
            match session.step(&responses).unwrap() {
                Step::Done(_) => break,
                Step::NeedLabels(requests) => {
                    responses = requests
                        .iter()
                        .map(|req| LabelResponse {
                            pair_id: req.pair_id,
                            label: w.pair(req.index).ground_truth(),
                        })
                        .collect();
                }
            }
        }
        drop(session);

        let mut resumed = DurableSession::resume(&w, &path).unwrap();
        let mut responses = Vec::new();
        let outcome = loop {
            match resumed.step(&responses).unwrap() {
                Step::Done(outcome) => break outcome,
                Step::NeedLabels(requests) => {
                    responses = requests
                        .iter()
                        .map(|req| LabelResponse {
                            pair_id: req.pair_id,
                            label: w.pair(req.index).ground_truth(),
                        })
                        .collect();
                }
            }
        };
        assert_eq!(outcome.solution, reference_outcome.solution);
        assert_eq!(outcome.assignment, reference_outcome.assignment);
        assert_eq!(outcome.total_human_cost, reference_outcome.total_human_cost);
        assert_eq!(resumed.session().answered_log(), &reference_log[..]);

        // Resuming the *completed* log returns the same outcome immediately.
        let mut done = DurableSession::resume(&w, &path).unwrap();
        let Step::Done(again) = done.step(&[]).unwrap() else { panic!("expected done") };
        assert_eq!(again.solution, reference_outcome.solution);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_rejects_wrong_workloads_and_headerless_logs() {
        let w = workload(400);
        let other = workload(800);
        let path = temp_path("reject");
        let mut session = DurableSession::create(SessionConfig::AllHuman, &w, &path).unwrap();
        let _ = session.step(&[]).unwrap();
        drop(session);
        assert!(matches!(DurableSession::resume(&other, &path), Err(HumoError::Wal(_))));

        // A log that never wrote SessionBegin is rejected.
        let mut writer = WalWriter::create(&path).unwrap();
        writer.append(&WalRecord::Labels(Vec::new())).unwrap();
        drop(writer);
        assert!(matches!(DurableSession::resume(&w, &path), Err(HumoError::Wal(_))));
        std::fs::remove_file(&path).unwrap();
    }
}
