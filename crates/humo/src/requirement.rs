//! User-specified quality requirements.

use crate::{HumoError, Result};

/// A comprehensive ER quality requirement: precision ≥ α and recall ≥ β, each to
/// be met with confidence ≥ θ (Definition 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityRequirement {
    precision: f64,
    recall: f64,
    confidence: f64,
}

impl QualityRequirement {
    /// Creates a requirement, validating that `precision` and `recall` lie in
    /// `[0, 1]` and `confidence` in `[0, 1)`.
    pub fn new(precision: f64, recall: f64, confidence: f64) -> Result<Self> {
        for (name, value) in [("precision", precision), ("recall", recall)] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(HumoError::InvalidConfig(format!(
                    "{name} requirement must be in [0,1], got {value}"
                )));
            }
        }
        if !(0.0..1.0).contains(&confidence) {
            return Err(HumoError::InvalidConfig(format!(
                "confidence must be in [0,1), got {confidence}"
            )));
        }
        Ok(Self { precision, recall, confidence })
    }

    /// A symmetric requirement with equal precision and recall levels and the
    /// paper's default confidence of 0.9.
    pub fn symmetric(level: f64) -> Result<Self> {
        Self::new(level, level, 0.9)
    }

    /// The required precision level α.
    pub fn precision(&self) -> f64 {
        self.precision
    }

    /// The required recall level β.
    pub fn recall(&self) -> f64 {
        self.recall
    }

    /// The required confidence level θ.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The per-bound confidence `√θ` used when two independent bound estimates are
    /// combined (Eq. 13 and Eq. 14 of the paper).
    pub fn split_confidence(&self) -> f64 {
        self.confidence.sqrt()
    }

    /// Whether a set of achieved quality metrics satisfies this requirement.
    pub fn is_satisfied_by(&self, metrics: &er_core::workload::QualityMetrics) -> bool {
        metrics.precision() >= self.precision && metrics.recall() >= self.recall
    }
}

impl std::fmt::Display for QualityRequirement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "precision >= {:.2}, recall >= {:.2} @ confidence {:.2}",
            self.precision, self.recall, self.confidence
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::workload::QualityMetrics;

    #[test]
    fn valid_requirements_are_accepted() {
        let r = QualityRequirement::new(0.9, 0.85, 0.95).unwrap();
        assert_eq!(r.precision(), 0.9);
        assert_eq!(r.recall(), 0.85);
        assert_eq!(r.confidence(), 0.95);
        assert!((r.split_confidence() - 0.95_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn invalid_requirements_are_rejected() {
        assert!(QualityRequirement::new(1.5, 0.9, 0.9).is_err());
        assert!(QualityRequirement::new(0.9, -0.1, 0.9).is_err());
        assert!(QualityRequirement::new(0.9, 0.9, 1.0).is_err());
        assert!(QualityRequirement::new(f64::NAN, 0.9, 0.9).is_err());
    }

    #[test]
    fn symmetric_constructor() {
        let r = QualityRequirement::symmetric(0.8).unwrap();
        assert_eq!(r.precision(), 0.8);
        assert_eq!(r.recall(), 0.8);
        assert_eq!(r.confidence(), 0.9);
    }

    #[test]
    fn satisfaction_check() {
        let r = QualityRequirement::new(0.8, 0.7, 0.9).unwrap();
        // precision 0.9, recall 0.75
        let good = QualityMetrics::from_counts(9, 1, 3, 10);
        assert!(r.is_satisfied_by(&good));
        // precision 0.5 fails
        let bad = QualityMetrics::from_counts(5, 5, 0, 10);
        assert!(!r.is_satisfied_by(&bad));
    }

    #[test]
    fn display_is_readable() {
        let r = QualityRequirement::symmetric(0.9).unwrap();
        let s = format!("{r}");
        assert!(s.contains("0.90"));
    }
}
