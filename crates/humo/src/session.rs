//! Sans-I/O labeling sessions: batched, resumable human-in-the-loop
//! optimization.
//!
//! Every HUMO optimizer consumes manual labels — the scarce resource the whole
//! paper is about. The classic entry point (`Optimizer::optimize(workload,
//! oracle)`) pulls those labels synchronously, one blocking call at a time,
//! which is fine for simulation but wrong for a production deployment where
//! labels come from real people: asynchronously, in batches, with latency, and
//! sometimes never.
//!
//! A [`LabelingSession`] inverts that control flow into a sans-I/O state
//! machine. The session never performs I/O; instead it *emits* batches of
//! [`LabelRequest`]s and is *driven* with [`LabelResponse`]s:
//!
//! ```text
//!             ┌─────────────────────────────────────────────┐
//!             │                LabelingSession              │
//!  step(&[])  │  replay optimizer against answered labels   │
//! ──────────► │                                             │
//!             │   needs labels it             completes     │
//!             │   does not have                             │
//!             └───────┬─────────────────────────┬───────────┘
//!                     ▼                         ▼
//!          Step::NeedLabels(batch)    Step::Done(outcome)
//!                     │
//!                     ▼
//!        dispatch batch to humans (crowdsourcing, UI, queue, …)
//!                     │
//!                     ▼
//!          step(&responses)  ──────────────► (loop)
//! ```
//!
//! Each emitted batch is a set of *distinct, not-yet-answered* pairs that can
//! be labeled in parallel: a whole subset sample for SAMP/ALL, a whole
//! interval/subset probe for BASE/HYBR boundary growth, the full human region
//! `DH` for the final verification. Responses may arrive partially, in any
//! order, across any number of `step` calls; the session simply re-emits
//! whatever is still missing.
//!
//! # How it works: deterministic replay
//!
//! Internally `step` re-runs the optimizer from scratch against the map of
//! answered labels. All optimizers in this crate are deterministic given their
//! configuration and the labels they observe (within-subset sampling uses a
//! seeded RNG whose draw order does not depend on label values), so a replay
//! reproduces the exact same decisions up to the first pair whose label is
//! unknown — at which point it suspends with the missing batch. This is what
//! makes sessions *resumable for free*: the answered-label log is a complete
//! checkpoint, and [`LabelingSession::resume`] rebuilds a session mid-flight
//! from nothing but the session's inputs (configuration, workload, and — for
//! warm-started sessions — the same [`WarmStart`]) plus that log.
//!
//! Replay trades a little CPU (the per-step re-run) for zero duplicated human
//! work — no label is ever requested twice — and for byte-identical behavior
//! between the session API and the classic oracle API:
//! [`LabelingSession::drive`] is literally how `Optimizer::optimize` is
//! implemented now.
//!
//! Most of that CPU is memoized away: a session keeps a *replay cache* of
//! derived state — the completed sampling plan and the in-flight
//! Gaussian-process training state of the sampling-based optimizers — so each
//! step resumes the replay where the previous one suspended instead of
//! re-running the whole optimization. The cache never changes behavior
//! (batches, rounds, costs and outcomes are byte-identical with it disabled
//! via [`LabelingSession::with_replay_cache`]); it only removes the
//! O(rounds²) replay cost that a from-scratch re-run per step would pay.
//!
//! # Driving a session with an oracle
//!
//! ```
//! use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};
//! use humo::{
//!     GroundTruthOracle, LabelResponse, LabelingSession, OptimizerKind, QualityRequirement,
//!     SessionConfig, Step,
//! };
//!
//! let workload = SyntheticGenerator::new(SyntheticConfig::new(8_000, 14.0, 0.1)).generate();
//! let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
//! let config = SessionConfig::for_kind(OptimizerKind::Hybrid, requirement);
//!
//! // Manual driving: answer every batch from the ground truth.
//! let mut session = LabelingSession::new(config, &workload).unwrap();
//! let mut responses = Vec::new();
//! let outcome = loop {
//!     match session.step(&responses).unwrap() {
//!         Step::Done(outcome) => break outcome,
//!         Step::NeedLabels(requests) => {
//!             responses = requests
//!                 .iter()
//!                 .map(|request| LabelResponse {
//!                     pair_id: request.pair_id,
//!                     label: workload.pair(request.index).ground_truth(),
//!                 })
//!                 .collect();
//!         }
//!     }
//! };
//! assert!(outcome.metrics.precision() >= 0.9);
//!
//! // Equivalent: let an Oracle answer synchronously.
//! let mut session = LabelingSession::new(config, &workload).unwrap();
//! let driven = session.drive(&mut GroundTruthOracle::new()).unwrap();
//! assert_eq!(driven.solution, outcome.solution);
//! ```

use crate::baseline::{BaselineConfig, BaselineOptimizer};
use crate::hybrid::{HybridConfig, HybridOptimizer};
use crate::optimizer::OptimizerKind;
use crate::oracle::Oracle;
use crate::requirement::QualityRequirement;
use crate::sampling::{
    AllSamplingConfig, AllSamplingOptimizer, PartialSamplingConfig, PartialSamplingOptimizer,
    WarmStart,
};
use crate::solution::{HumoSolution, OptimizationOutcome};
use crate::{HumoError, Result};
use er_core::workload::{InstancePair, Label, LabelAssignment, PairId, Workload};
use std::collections::{HashMap, HashSet};

/// One pair the session needs a manual label for.
///
/// Requests within a batch are independent: they can be dispatched to
/// different workers in parallel and answered in any order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelRequest {
    /// Stable identifier of the pair (use this to route the answer back).
    pub pair_id: PairId,
    /// Position of the pair in the similarity-sorted workload; the full record
    /// payload is available via `workload.pair(index)`.
    pub index: usize,
    /// The pair's machine-metric value, for display/triage in labeling UIs.
    pub similarity: f64,
}

/// A manual label for one previously requested pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelResponse {
    /// The pair this label answers.
    pub pair_id: PairId,
    /// The human's verdict.
    pub label: Label,
}

/// What a [`LabelingSession::step`] call produced.
#[derive(Debug, Clone)]
pub enum Step {
    /// The session needs these labels before it can make further progress.
    /// Every batch contains only distinct, not-yet-answered pairs.
    NeedLabels(Vec<LabelRequest>),
    /// The optimization finished with this outcome.
    Done(OptimizationOutcome),
}

/// Which stage of the optimization the session's most recent label batch
/// belongs to — useful for prioritizing or pricing crowdsourced dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// Drawing within-subset random samples (SAMP/ALL estimation, Algorithm 1
    /// refinement probes).
    Sampling,
    /// Growing the human region boundary by whole units/subsets (BASE and
    /// HYBR's monotonicity-guided search).
    BoundarySearch,
    /// Final verification of the chosen human region `DH`.
    Verification,
    /// The session has completed.
    Done,
}

impl std::fmt::Display for SessionPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SessionPhase::Sampling => "sampling",
            SessionPhase::BoundarySearch => "boundary-search",
            SessionPhase::Verification => "verification",
            SessionPhase::Done => "done",
        })
    }
}

/// Which optimizer a session runs, with its full configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionConfig {
    /// The conservative baseline of Section V ("BASE").
    Baseline(BaselineConfig),
    /// The all-sampling solution of Section VI-A.
    AllSampling(AllSamplingConfig),
    /// The partial-sampling solution of Section VI-B ("SAMP").
    PartialSampling(PartialSamplingConfig),
    /// The hybrid approach of Section VII ("HYBR").
    Hybrid(HybridConfig),
    /// Degenerate "optimizer" that hands the entire workload to the human.
    /// Used by streaming pipelines as the exact fallback for workloads too
    /// small (or too degenerate) to drive the statistical optimizers.
    AllHuman,
}

impl SessionConfig {
    /// The session configuration for an [`OptimizerKind`] with the paper's
    /// default parameters for the given quality requirement.
    pub fn for_kind(kind: OptimizerKind, requirement: QualityRequirement) -> Self {
        match kind {
            OptimizerKind::Baseline => SessionConfig::Baseline(BaselineConfig::new(requirement)),
            OptimizerKind::AllSampling => {
                SessionConfig::AllSampling(AllSamplingConfig::new(requirement))
            }
            OptimizerKind::PartialSampling => {
                SessionConfig::PartialSampling(PartialSamplingConfig::new(requirement))
            }
            OptimizerKind::Hybrid => SessionConfig::Hybrid(HybridConfig::new(requirement)),
        }
    }

    /// The phase a fresh session of this configuration starts in.
    fn initial_phase(&self) -> SessionPhase {
        match self {
            SessionConfig::Baseline(_) => SessionPhase::BoundarySearch,
            SessionConfig::AllHuman => SessionPhase::Verification,
            _ => SessionPhase::Sampling,
        }
    }

    /// Validates the embedded optimizer configuration.
    fn validate(&self) -> Result<()> {
        match self {
            SessionConfig::Baseline(cfg) => BaselineOptimizer::new(*cfg).map(|_| ()),
            SessionConfig::AllSampling(cfg) => AllSamplingOptimizer::new(*cfg).map(|_| ()),
            SessionConfig::PartialSampling(cfg) => PartialSamplingOptimizer::new(*cfg).map(|_| ()),
            SessionConfig::Hybrid(cfg) => HybridOptimizer::new(*cfg).map(|_| ()),
            SessionConfig::AllHuman => Ok(()),
        }
    }
}

/// Why an optimizer replay stopped before producing a solution.
pub(crate) enum Suspend {
    /// The replay reached a point where it needs these workload indices
    /// labeled (distinct, not yet answered), during the given phase.
    Need {
        /// The stage of the optimization the batch belongs to.
        phase: SessionPhase,
        /// Workload indices of the unanswered pairs, in request order.
        indices: Vec<usize>,
    },
    /// The replay failed with a real error.
    Fail(HumoError),
}

impl From<HumoError> for Suspend {
    fn from(e: HumoError) -> Self {
        Suspend::Fail(e)
    }
}

impl From<er_stats::StatsError> for Suspend {
    fn from(e: er_stats::StatsError) -> Self {
        Suspend::Fail(e.into())
    }
}

impl From<er_core::ErError> for Suspend {
    fn from(e: er_core::ErError) -> Self {
        Suspend::Fail(e.into())
    }
}

/// Result alias for suspendable optimizer cores.
pub(crate) type Drive<T> = std::result::Result<T, Suspend>;

/// The answered-label view an optimizer replay reads from. Requesting labels
/// that are not yet answered suspends the replay with the missing batch.
///
/// The slate reads a *dense* per-index label store (one slot per workload
/// position), so every replay read is an array access. Large verification
/// waves touch every `DH` pair several times per step — through [`Self::
/// require`], then [`Self::is_match`] during resolution — and a keyed map
/// there (one hash or tree probe plus a pair-id fetch per read) dominated
/// whole-session replay time before the dense store existed.
pub(crate) struct LabelSlate<'a> {
    labels: &'a [Option<Label>],
}

impl<'a> LabelSlate<'a> {
    pub(crate) fn new(labels: &'a [Option<Label>]) -> Self {
        Self { labels }
    }

    /// The answered label of a workload index, if any.
    fn get(&self, index: usize) -> Option<bool> {
        self.labels[index].map(|label| label.is_match())
    }

    /// The answered label of a workload index.
    ///
    /// # Panics
    /// Panics if the index was not covered by a successful [`Self::require`] —
    /// an internal contract violation, not a user error.
    pub(crate) fn is_match(&self, index: usize) -> bool {
        self.get(index).expect("label must be required before it is read")
    }

    /// Ensures every index is answered, suspending the replay with the batch
    /// of distinct, not-yet-answered pairs (in first-occurrence order)
    /// otherwise.
    pub(crate) fn require(
        &self,
        phase: SessionPhase,
        indices: impl IntoIterator<Item = usize>,
    ) -> Drive<()> {
        let mut missing: Vec<usize> = Vec::new();
        // Indices and pair ids are in bijection within a workload, so
        // index-level dedup is id-level dedup without the hashing.
        let mut seen = vec![false; self.labels.len()];
        for index in indices {
            if self.labels[index].is_none() && !std::mem::replace(&mut seen[index], true) {
                missing.push(index);
            }
        }
        if missing.is_empty() {
            Ok(())
        } else {
            Err(Suspend::Need { phase, indices: missing })
        }
    }
}

/// Cross-step memoization of deterministic replay work.
///
/// Replay determinism (see the [module docs](self)) means a step's re-run
/// reproduces exactly what the previous step computed, up to the first
/// unanswered label. The cache exploits that instead of paying for it: the
/// session keeps (a) the completed estimation plan of the sampling-based
/// optimizers — so SAMP's verification round and HYBR's boundary-search
/// rounds stop re-deriving it — and (b) the in-flight Gaussian-process
/// training state of Algorithm 1, so each step resumes the
/// sampling-and-refinement loop where it suspended rather than replaying it
/// from scratch — plus (c) the workload's subset partition, whose O(pairs)
/// construction would otherwise repeat every step. Cached state is only ever
/// *derived* state: outcomes, costs,
/// emitted batches and the answered log are byte-identical with the cache
/// disabled ([`SessionState::with_replay_cache`]), which is how the bench
/// harness measures the saving.
#[derive(Debug, Clone)]
pub(crate) struct ReplayCache {
    enabled: bool,
    plan: Option<crate::sampling::SamplingPlan>,
    training: Option<crate::sampling::GpTrainingState>,
    partition: Option<er_core::workload::SubsetPartition>,
}

impl Default for ReplayCache {
    fn default() -> Self {
        Self { enabled: true, plan: None, training: None, partition: None }
    }
}

impl ReplayCache {
    /// A cache that stores nothing: every step performs a full replay.
    pub(crate) fn disabled() -> Self {
        Self { enabled: false, ..Self::default() }
    }

    /// The memoized completed sampling plan, if any.
    pub(crate) fn plan(&self) -> Option<&crate::sampling::SamplingPlan> {
        self.plan.as_ref()
    }

    /// Memoizes a completed sampling plan (and drops the now-redundant
    /// training state). No-op when disabled.
    pub(crate) fn store_plan(&mut self, plan: crate::sampling::SamplingPlan) {
        if self.enabled {
            self.plan = Some(plan);
            self.training = None;
        }
    }

    /// Takes the suspended Algorithm 1 training state, leaving the slot empty
    /// until the replay suspends (and stores) again.
    pub(crate) fn take_training(&mut self) -> Option<crate::sampling::GpTrainingState> {
        self.training.take()
    }

    /// Stores suspended Algorithm 1 training state. No-op when disabled.
    pub(crate) fn store_training(&mut self, state: crate::sampling::GpTrainingState) {
        if self.enabled {
            self.training = Some(state);
        }
    }

    /// The session's subset partition, memoized: building one is O(pairs)
    /// (every subset aggregates its mean similarity) and the result is fully
    /// determined by the workload and the unit size, both fixed for the life
    /// of a session. Returns a clone (O(subsets)); computes and stores on the
    /// first call, or on every call when disabled.
    pub(crate) fn partition_or_compute(
        &mut self,
        compute: impl FnOnce() -> crate::Result<er_core::workload::SubsetPartition>,
    ) -> crate::Result<er_core::workload::SubsetPartition> {
        if let Some(partition) = &self.partition {
            return Ok(partition.clone());
        }
        let partition = compute()?;
        if self.enabled {
            self.partition = Some(partition.clone());
        }
        Ok(partition)
    }

    /// Drops all cached state (used once a session completes).
    fn clear(&mut self) {
        self.plan = None;
        self.training = None;
        self.partition = None;
    }
}

/// What a completed optimizer replay hands back to the session.
pub(crate) struct CoreOutput {
    /// The chosen partition.
    pub(crate) solution: HumoSolution,
    /// The final label assignment (machine labels plus answered labels on `DH`).
    pub(crate) assignment: LabelAssignment,
    /// Warm-start state seeding the next epoch, for optimizers that produce one.
    pub(crate) warm_out: Option<WarmStart>,
}

/// Shared final-verification step: requires every `DH` label (one batch) and
/// assembles the label assignment — `D⁻` unmatch, `DH` as answered, `D⁺` match.
pub(crate) fn verified_assignment(
    solution: &HumoSolution,
    workload: &Workload,
    slate: &LabelSlate<'_>,
) -> Drive<LabelAssignment> {
    slate.require(SessionPhase::Verification, solution.human_range())?;
    Ok(solution.resolve_from_labels(workload, |index| Label::from_bool(slate.is_match(index))))
}

/// The all-human "optimizer": every pair goes to the human. Exact and
/// deterministic; used as the streaming pipelines' fallback for tiny or
/// statistically degenerate workloads.
fn all_human_core(workload: &Workload, slate: &LabelSlate<'_>) -> Drive<CoreOutput> {
    let solution = HumoSolution::all_human(workload.len());
    let assignment = verified_assignment(&solution, workload, slate)?;
    Ok(CoreOutput { solution, assignment, warm_out: None })
}

/// Runs one full replay of the configured optimizer against the answered
/// labels.
fn run_core(
    config: &SessionConfig,
    warm: Option<&WarmStart>,
    workload: &Workload,
    slate: &LabelSlate<'_>,
    cache: &mut ReplayCache,
) -> Drive<CoreOutput> {
    match config {
        SessionConfig::Baseline(cfg) => BaselineOptimizer::new(*cfg)?.session_core(workload, slate),
        SessionConfig::AllSampling(cfg) => {
            AllSamplingOptimizer::new(*cfg)?.session_core(workload, slate)
        }
        SessionConfig::PartialSampling(cfg) => {
            PartialSamplingOptimizer::new(*cfg)?.session_core(workload, slate, warm, cache)
        }
        SessionConfig::Hybrid(cfg) => {
            HybridOptimizer::new(*cfg)?.session_core(workload, slate, cache)
        }
        SessionConfig::AllHuman => all_human_core(workload, slate),
    }
}

/// Answers a batch of label requests through an [`Oracle`], in request order —
/// the one driver loop body shared by [`LabelingSession::drive`], the engine
/// wrappers in `er-pipeline`, and the crate-internal oracle shims.
///
/// # Panics
/// Panics if the oracle's [`Oracle::label_batch`] returns a different number
/// of labels than requests: a short return would otherwise make every driver
/// loop forever re-emitting the same batch.
pub fn answer_requests(
    workload: &Workload,
    requests: &[LabelRequest],
    oracle: &mut dyn Oracle,
) -> Vec<LabelResponse> {
    let pairs: Vec<&InstancePair> =
        requests.iter().map(|request| workload.pair(request.index)).collect();
    let labels = oracle.label_batch(&pairs);
    assert_eq!(
        labels.len(),
        requests.len(),
        "Oracle::label_batch must return exactly one label per requested pair"
    );
    requests
        .iter()
        .zip(labels)
        .map(|(request, label)| LabelResponse { pair_id: request.pair_id, label })
        .collect()
}

/// Drives a suspendable computation to completion by answering every emitted
/// batch through an [`Oracle`] — the internal engine behind the oracle-based
/// public APIs (`PartialSamplingOptimizer::plan`, …).
pub(crate) fn drive_with_oracle<T>(
    workload: &Workload,
    oracle: &mut dyn Oracle,
    mut f: impl FnMut(&LabelSlate<'_>, &mut ReplayCache) -> Drive<T>,
) -> Result<T> {
    let mut answered: Vec<Option<Label>> = vec![None; workload.len()];
    let mut cache = ReplayCache::default();
    loop {
        let attempt = f(&LabelSlate::new(&answered), &mut cache);
        match attempt {
            Ok(value) => return Ok(value),
            Err(Suspend::Need { indices, .. }) => {
                let requests: Vec<LabelRequest> = indices
                    .iter()
                    .map(|&index| {
                        let pair = workload.pair(index);
                        LabelRequest { pair_id: pair.id(), index, similarity: pair.similarity() }
                    })
                    .collect();
                for (request, response) in
                    requests.iter().zip(answer_requests(workload, &requests, oracle))
                {
                    answered[request.index].get_or_insert(response.label);
                }
            }
            Err(Suspend::Fail(e)) => return Err(e),
        }
    }
}

/// The owned, workload-detached part of a labeling session: configuration,
/// answered-label log and progress counters.
///
/// [`LabelingSession`] is the ergonomic borrowing wrapper most callers want;
/// `SessionState` exists for embedders (such as
/// `er_pipeline::ResolutionEngine`) whose workload lives inside a larger
/// mutable structure and therefore cannot be borrowed for the session's whole
/// lifetime. Every [`SessionState::step`] must be called with the same
/// workload the session was started for.
#[derive(Debug, Clone)]
pub struct SessionState {
    config: SessionConfig,
    warm: Option<WarmStart>,
    /// Labels known *before* the session started (see
    /// [`SessionState::preload`]), keyed by pair id because no workload is
    /// available at preload time to index them. First answer wins within the
    /// preloads; the dense `labels` store resolves preload-vs-response
    /// conflicts in arrival order when it is (re)built.
    preloaded: HashMap<PairId, Label>,
    /// The dense per-workload-index label store replays read (see
    /// [`LabelSlate`]): every known label, one slot per workload position.
    /// Built lazily from `log` + `preloaded` on the first absorption or step
    /// (and rebuilt after [`SessionState::preload`], which has no workload to
    /// index against and therefore just drops it), then maintained
    /// incrementally by `absorb`.
    labels: Option<Vec<Option<Label>>>,
    /// Distinct responses absorbed through `step`, in arrival order — the
    /// session's cost basis and its checkpoint/resume log.
    log: Vec<LabelResponse>,
    pending: Vec<LabelRequest>,
    rounds: usize,
    /// Rounds dispatched while planning (the sampling phase).
    plan_rounds: usize,
    /// Rounds dispatched while refining (boundary search + verification).
    refine_rounds: usize,
    phase: SessionPhase,
    outcome: Option<OptimizationOutcome>,
    warm_out: Option<WarmStart>,
    /// Lazily built pair-id-to-workload-index lookup, used both to validate
    /// responses and to maintain the dense `labels` store.
    index_of: Option<PairIndex>,
    /// Memoized replay work carried across steps (see [`ReplayCache`]).
    cache: ReplayCache,
}

/// Pair-id → workload-index lookup. Workload pair ids are assigned from a
/// counter at construction, so in practice the id space is dense and a direct
/// index table answers lookups in O(1) without hashing — absorption touches
/// it once per response, which on a full verification wave means once per
/// `DH` pair. A hash map covers workloads whose id space is too sparse for a
/// table (for example a small view over a much larger id universe).
#[derive(Debug, Clone)]
enum PairIndex {
    /// `table[id] = index`, with `u32::MAX` marking ids outside the workload.
    Dense(Vec<u32>),
    Sparse(HashMap<PairId, usize>),
}

impl PairIndex {
    fn build(workload: &Workload) -> Self {
        let len = workload.len();
        let max_id = workload.iter().map(|pair| pair.id().0).max().unwrap_or(0);
        debug_assert!(len < u32::MAX as usize, "workloads keep well under 2^32 pairs");
        if (max_id as usize) < 4 * len.max(256) {
            let mut table = vec![u32::MAX; max_id as usize + 1];
            for (index, pair) in workload.iter().enumerate() {
                table[pair.id().0 as usize] = index as u32;
            }
            PairIndex::Dense(table)
        } else {
            PairIndex::Sparse(
                workload.iter().enumerate().map(|(index, pair)| (pair.id(), index)).collect(),
            )
        }
    }

    /// The workload index of a pair id, if the pair is part of the workload.
    fn get(&self, id: PairId) -> Option<usize> {
        match self {
            PairIndex::Dense(table) => table
                .get(id.0 as usize)
                .copied()
                .filter(|&index| index != u32::MAX)
                .map(|index| index as usize),
            PairIndex::Sparse(map) => map.get(&id).copied(),
        }
    }
}

impl SessionState {
    /// Creates a fresh session state, validating the configuration.
    pub fn new(config: SessionConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            phase: config.initial_phase(),
            config,
            warm: None,
            preloaded: HashMap::new(),
            labels: None,
            log: Vec::new(),
            pending: Vec::new(),
            rounds: 0,
            plan_rounds: 0,
            refine_rounds: 0,
            outcome: None,
            warm_out: None,
            index_of: None,
            cache: ReplayCache::default(),
        })
    }

    /// Seeds the session with warm-start state from a previous optimization
    /// (honored by the partial-sampling optimizer, inert for the others).
    pub fn with_warm_start(mut self, warm: Option<WarmStart>) -> Self {
        self.warm = warm;
        self
    }

    /// Enables or disables the cross-step replay cache (enabled by default).
    ///
    /// The cache memoizes deterministic replay work — the completed sampling
    /// plan and the in-flight Gaussian-process training state of the
    /// sampling-based optimizers — so each [`SessionState::step`] resumes
    /// where the previous one suspended instead of replaying from scratch.
    /// It is purely a performance knob: emitted batches, rounds, costs, the
    /// answered log and the outcome are byte-identical either way. Disabling
    /// it is useful for benchmarking the saving and for testing that
    /// equivalence.
    pub fn with_replay_cache(mut self, enabled: bool) -> Self {
        self.cache = if enabled { ReplayCache::default() } else { ReplayCache::disabled() };
        self
    }

    /// Rebuilds a session from a previous session's answered-label log (see
    /// [`SessionState::answered_log`]). The log's labels count toward this
    /// session's cost exactly as they did originally, and the next
    /// [`SessionState::step`] resumes the optimization from where the logged
    /// labels carry it. Log entries referencing pairs outside `workload` are
    /// rejected with [`HumoError::InvalidResponse`], like any other response.
    ///
    /// The log replaces the *labels*, not the session's inputs: a session
    /// that was seeded with a [`WarmStart`] must be resumed with the **same**
    /// warm start (chain [`SessionState::with_warm_start`], or use
    /// [`LabelingSession::resume_with_warm_start`]) — resuming it cold replays
    /// a different optimization.
    pub fn resume(
        config: SessionConfig,
        workload: &Workload,
        log: &[LabelResponse],
    ) -> Result<Self> {
        let mut state = Self::new(config)?;
        // The same membership validation step() applies to live responses: a
        // log resumed against the wrong workload (or a corrupted log) errors
        // instead of silently inflating the cost basis with alien pairs.
        state.absorb(workload, log)?;
        Ok(state)
    }

    /// Preloads labels known *before* this session started (a cross-epoch
    /// label store, an earlier session over an overlapping workload, …). They
    /// are never re-requested and do **not** count toward this session's cost
    /// or appear in its answered log.
    pub fn preload(&mut self, responses: impl IntoIterator<Item = LabelResponse>) {
        for response in responses {
            self.preloaded.entry(response.pair_id).or_insert(response.label);
        }
        // No workload here to map pair ids to indices: drop the dense label
        // store and let the next step rebuild it from the log and the
        // updated preloads.
        self.labels = None;
    }

    /// The configuration the session runs.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The requests of the most recent [`Step::NeedLabels`] batch that are
    /// still unanswered.
    pub fn pending(&self) -> &[LabelRequest] {
        &self.pending
    }

    /// Number of distinct label dispatch waves so far — the label
    /// *round-trip* cost of the session (each wave is one dispatch latency,
    /// however many pairs it contains). Re-emissions of a still-outstanding
    /// batch (zero-progress polls, partial-response steps) do not count.
    ///
    /// Unlike the label cost, this counter is per-process bookkeeping, not
    /// part of the checkpoint: a session rebuilt via [`SessionState::resume`]
    /// starts counting at zero again (the checkpointed labels arrive in one
    /// replayed wave, not in their original cadence). Drivers that need a
    /// cumulative latency figure across restarts should persist it alongside
    /// the log.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Rounds dispatched during the optimizer's *plan* stage (sampling).
    /// `plan_rounds() + refine_rounds() == rounds()` at every point.
    pub fn plan_rounds(&self) -> usize {
        self.plan_rounds
    }

    /// Rounds dispatched during the optimizer's *refine* stage (boundary
    /// search and verification).
    pub fn refine_rounds(&self) -> usize {
        self.refine_rounds
    }

    /// The optimization stage the most recent batch belongs to.
    pub fn phase(&self) -> SessionPhase {
        self.phase
    }

    /// The distinct responses absorbed so far, in arrival order. Feeding this
    /// log to [`SessionState::resume`] (same configuration, same workload)
    /// rebuilds a session that resumes to the same outcome.
    pub fn answered_log(&self) -> &[LabelResponse] {
        &self.log
    }

    /// Whether the session has completed.
    pub fn is_done(&self) -> bool {
        self.outcome.is_some()
    }

    /// The finished outcome, once the session is done.
    pub fn outcome(&self) -> Option<&OptimizationOutcome> {
        self.outcome.as_ref()
    }

    /// Warm-start state for the next epoch, produced by completed
    /// partial-sampling sessions.
    pub fn next_warm_start(&self) -> Option<&WarmStart> {
        self.warm_out.as_ref()
    }

    /// Builds the pair-id index and the dense label store if they are not
    /// already up: the store starts all-`None`, absorbed responses land at
    /// their logged positions, and preloads fill whatever is still empty —
    /// which resolves every preload-vs-response conflict the same way the
    /// live arrival order did, because `absorb` never logs a pair that
    /// already has a label.
    fn ensure_labels(&mut self, workload: &Workload) {
        let index_of = self.index_of.get_or_insert_with(|| PairIndex::build(workload));
        if self.labels.is_some() {
            return;
        }
        let mut labels: Vec<Option<Label>> = vec![None; workload.len()];
        for response in &self.log {
            let index = index_of
                .get(response.pair_id)
                .expect("logged responses were validated against this workload");
            labels[index] = Some(response.label);
        }
        // Preloads may reference pairs outside this workload (a cross-epoch
        // label store, an overlapping session): those simply have no slot.
        for (&pair_id, &label) in &self.preloaded {
            if let Some(index) = index_of.get(pair_id) {
                labels[index].get_or_insert(label);
            }
        }
        self.labels = Some(labels);
    }

    /// Absorbs responses: unknown pairs are rejected, repeated labels for the
    /// same pair keep the first answer (mirroring oracle caching semantics).
    /// Absorption is transactional — a rejected batch records nothing.
    fn absorb(&mut self, workload: &Workload, responses: &[LabelResponse]) -> Result<()> {
        if responses.is_empty() {
            return Ok(());
        }
        self.ensure_labels(workload);
        let index_of = self.index_of.as_ref().expect("pair index ensured above");
        let labels = self.labels.as_mut().expect("label store ensured above");
        // Validate the whole batch before recording anything, so a rejected
        // step leaves the label store, cost log and checkpoint untouched.
        let indices: Vec<usize> = responses
            .iter()
            .map(|response| {
                index_of.get(response.pair_id).ok_or_else(|| {
                    HumoError::InvalidResponse(format!(
                        "response labels pair {} which is not part of this session's workload",
                        response.pair_id
                    ))
                })
            })
            .collect::<Result<_>>()?;
        for (response, &index) in responses.iter().zip(&indices) {
            let slot = &mut labels[index];
            if slot.is_none() {
                *slot = Some(response.label);
                self.log.push(*response);
            }
        }
        self.pending.retain(|request| labels[request.index].is_none());
        Ok(())
    }

    /// Absorbs responses *without* advancing the replay, returning the slice
    /// of the answered log that was newly appended — the exact records a
    /// write-ahead log must persist before the next [`SessionState::poll`]
    /// replays them. Responses repeating an already-answered pair are
    /// deduplicated away (first answer wins) and therefore do not appear in
    /// the returned slice; a batch referencing a pair outside the workload is
    /// rejected wholesale and records nothing. A completed session is frozen:
    /// late responses are ignored and the returned slice is empty.
    ///
    /// `step(workload, responses)` is exactly
    /// `absorb_responses(workload, responses)` followed by `poll(workload)`.
    pub fn absorb_responses(
        &mut self,
        workload: &Workload,
        responses: &[LabelResponse],
    ) -> Result<&[LabelResponse]> {
        if self.outcome.is_some() {
            return Ok(&[]);
        }
        let before = self.log.len();
        self.absorb(workload, responses)?;
        Ok(&self.log[before..])
    }

    /// Polls the session without supplying any responses — exactly
    /// [`SessionState::step`] with an empty response slice.
    ///
    /// A poll asks "where are you?": it re-emits the still-outstanding batch
    /// (without counting a new label round-trip) or returns the stored
    /// outcome. It is the natural first call on a fresh or resumed session,
    /// and `step(workload, responses)` is "absorb `responses`, then poll".
    pub fn poll(&mut self, workload: &Workload) -> Result<Step> {
        self.step(workload, &[])
    }

    /// Advances the session: absorbs `responses`, replays the optimizer
    /// against everything answered so far, and either emits the next batch of
    /// label requests or completes — i.e. absorb, then [`SessionState::poll`].
    ///
    /// `workload` must be the workload the session was started for. Responses
    /// may cover any subset of any emitted batch (and may even pre-answer
    /// pairs the session has not asked about yet); the session re-emits
    /// whatever is still missing. Stepping a completed session ignores the
    /// responses and returns the stored outcome again.
    pub fn step(&mut self, workload: &Workload, responses: &[LabelResponse]) -> Result<Step> {
        // A completed session is frozen: late responses are ignored rather
        // than absorbed, so the answered log (and any checkpoint taken from
        // it) keeps matching the stored outcome's cost counters.
        if let Some(outcome) = &self.outcome {
            return Ok(Step::Done(outcome.clone()));
        }
        self.absorb(workload, responses)?;
        self.ensure_labels(workload);
        let labels = self.labels.as_deref().expect("dense label store ensured above");
        let attempt = run_core(
            &self.config,
            self.warm.as_ref(),
            workload,
            &LabelSlate::new(labels),
            &mut self.cache,
        );
        match attempt {
            Ok(core) => {
                self.cache.clear();
                let metrics = workload.evaluate(&core.assignment)?;
                let verification_cost = core.solution.human_region_size();
                let total_human_cost = self.log.len();
                let outcome = OptimizationOutcome {
                    solution: core.solution,
                    assignment: core.assignment,
                    metrics,
                    verification_cost,
                    sampling_cost: total_human_cost.saturating_sub(verification_cost),
                    total_human_cost,
                };
                self.pending.clear();
                self.phase = SessionPhase::Done;
                self.warm_out = core.warm_out;
                self.outcome = Some(outcome.clone());
                Ok(Step::Done(outcome))
            }
            Err(Suspend::Need { phase, indices }) => {
                // A re-emission of (a subset of) the batch that is already
                // outstanding — a zero-progress poll or a partial-response
                // step — is not a new dispatch wave, so it does not count as
                // a label round-trip.
                let outstanding: HashSet<PairId> =
                    self.pending.iter().map(|request| request.pair_id).collect();
                self.pending = indices
                    .into_iter()
                    .map(|index| {
                        let pair = workload.pair(index);
                        LabelRequest { pair_id: pair.id(), index, similarity: pair.similarity() }
                    })
                    .collect();
                let reemission = !self.pending.is_empty()
                    && self.pending.iter().all(|request| outstanding.contains(&request.pair_id));
                if !reemission {
                    self.rounds += 1;
                    // Per-phase breakdown: the sampling phase is the
                    // optimizer's *plan* stage; boundary search and
                    // verification both *refine* the planned solution.
                    let obs = workload.obs();
                    obs.counter("session.rounds", 1);
                    match phase {
                        SessionPhase::Sampling => {
                            self.plan_rounds += 1;
                            obs.counter("session.rounds.plan", 1);
                        }
                        SessionPhase::BoundarySearch | SessionPhase::Verification => {
                            self.refine_rounds += 1;
                            obs.counter("session.rounds.refine", 1);
                        }
                        SessionPhase::Done => {}
                    }
                }
                self.phase = phase;
                Ok(Step::NeedLabels(self.pending.clone()))
            }
            Err(Suspend::Fail(e)) => Err(e),
        }
    }
}

/// A resumable, batched human-in-the-loop optimization over one workload.
///
/// See the [module documentation](self) for the full state-machine story. In
/// short: call [`LabelingSession::step`] with the responses you have (none to
/// start), dispatch every emitted [`Step::NeedLabels`] batch to your labelers,
/// and keep stepping until [`Step::Done`]. [`LabelingSession::drive`] runs
/// that loop against a synchronous [`Oracle`].
#[derive(Debug, Clone)]
pub struct LabelingSession<'w> {
    workload: &'w Workload,
    state: SessionState,
}

impl<'w> LabelingSession<'w> {
    /// Creates a session for the given optimizer configuration and workload.
    pub fn new(config: SessionConfig, workload: &'w Workload) -> Result<Self> {
        Ok(Self { workload, state: SessionState::new(config)? })
    }

    /// Creates a session seeded with warm-start state from a previous
    /// optimization (honored by the partial-sampling optimizer).
    pub fn with_warm_start(
        config: SessionConfig,
        workload: &'w Workload,
        warm: Option<WarmStart>,
    ) -> Result<Self> {
        Ok(Self { workload, state: SessionState::new(config)?.with_warm_start(warm) })
    }

    /// Rebuilds a session from a previous session's answered-label log; the
    /// next [`LabelingSession::step`] resumes to the same outcome the original
    /// session was heading for. A session that was created with a warm start
    /// must be resumed via [`LabelingSession::resume_with_warm_start`] with
    /// the same warm start. See [`SessionState::resume`].
    pub fn resume(
        config: SessionConfig,
        workload: &'w Workload,
        log: &[LabelResponse],
    ) -> Result<Self> {
        Ok(Self { workload, state: SessionState::resume(config, workload, log)? })
    }

    /// Rebuilds a warm-started session from its answered-label log: the same
    /// configuration, workload *and* warm start the original session was
    /// created with, plus the log, reproduce its optimization exactly.
    pub fn resume_with_warm_start(
        config: SessionConfig,
        workload: &'w Workload,
        log: &[LabelResponse],
        warm: Option<WarmStart>,
    ) -> Result<Self> {
        Ok(Self {
            workload,
            state: SessionState::resume(config, workload, log)?.with_warm_start(warm),
        })
    }

    /// Wraps an owned [`SessionState`] (e.g. one rebuilt via
    /// [`SessionState::resume`] and re-seeded with
    /// [`SessionState::with_warm_start`]) for the given workload.
    pub fn from_state(state: SessionState, workload: &'w Workload) -> Self {
        Self { workload, state }
    }

    /// The workload this session optimizes.
    pub fn workload(&self) -> &'w Workload {
        self.workload
    }

    /// The owned session state (for embedding or inspection).
    pub fn state(&self) -> &SessionState {
        &self.state
    }

    /// Enables or disables the cross-step replay cache (enabled by default) —
    /// a pure performance knob. See [`SessionState::with_replay_cache`].
    pub fn with_replay_cache(mut self, enabled: bool) -> Self {
        self.state = self.state.with_replay_cache(enabled);
        self
    }

    /// Polls the session without supplying any responses: re-emits the
    /// still-outstanding batch (not counted as a new label round-trip) or
    /// returns the stored outcome. See [`SessionState::poll`].
    pub fn poll(&mut self) -> Result<Step> {
        self.state.poll(self.workload)
    }

    /// Absorbs responses without advancing the replay, returning the newly
    /// appended tail of the answered log — what a write-ahead log persists
    /// before [`LabelingSession::poll`] replays it. See
    /// [`SessionState::absorb_responses`].
    pub fn absorb(&mut self, responses: &[LabelResponse]) -> Result<&[LabelResponse]> {
        self.state.absorb_responses(self.workload, responses)
    }

    /// Advances the session with the given responses — absorb, then
    /// [`LabelingSession::poll`]. See [`SessionState::step`] for the exact
    /// semantics.
    pub fn step(&mut self, responses: &[LabelResponse]) -> Result<Step> {
        self.state.step(self.workload, responses)
    }

    /// Runs the session to completion against a synchronous [`Oracle`],
    /// answering every emitted batch through [`Oracle::label_batch`].
    ///
    /// The outcome's cost counters are *session-scoped*: they count the
    /// distinct labels this session absorbed (including any checkpointed
    /// labels it was resumed from), regardless of how the session was driven.
    /// For a fresh session driven by a fresh oracle — the classic
    /// `Optimizer::optimize(workload, oracle)` entry point, which is
    /// implemented as this method — that equals the oracle's distinct-pair
    /// counter.
    pub fn drive(&mut self, oracle: &mut dyn Oracle) -> Result<OptimizationOutcome> {
        let mut responses: Vec<LabelResponse> = Vec::new();
        loop {
            match self.step(&responses)? {
                Step::Done(outcome) => return Ok(outcome),
                Step::NeedLabels(requests) => {
                    responses = answer_requests(self.workload, &requests, oracle);
                }
            }
        }
    }

    /// The still-unanswered requests of the most recent batch.
    pub fn pending(&self) -> &[LabelRequest] {
        self.state.pending()
    }

    /// Number of distinct label dispatch waves so far (label round-trips);
    /// re-emissions of a still-outstanding batch do not count. See
    /// [`SessionState::rounds`].
    pub fn rounds(&self) -> usize {
        self.state.rounds()
    }

    /// Rounds dispatched during the plan stage. See
    /// [`SessionState::plan_rounds`].
    pub fn plan_rounds(&self) -> usize {
        self.state.plan_rounds()
    }

    /// Rounds dispatched during the refine stage. See
    /// [`SessionState::refine_rounds`].
    pub fn refine_rounds(&self) -> usize {
        self.state.refine_rounds()
    }

    /// The optimization stage the most recent batch belongs to.
    pub fn phase(&self) -> SessionPhase {
        self.state.phase()
    }

    /// The distinct responses absorbed so far, in arrival order — the
    /// checkpoint log accepted by [`LabelingSession::resume`].
    pub fn answered_log(&self) -> &[LabelResponse] {
        self.state.answered_log()
    }

    /// Whether the session has completed.
    pub fn is_done(&self) -> bool {
        self.state.is_done()
    }

    /// Warm-start state for the next epoch, produced by completed
    /// partial-sampling sessions.
    pub fn next_warm_start(&self) -> Option<&WarmStart> {
        self.state.next_warm_start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};
    use std::collections::BTreeSet;

    fn workload(n: usize) -> Workload {
        SyntheticGenerator::new(SyntheticConfig {
            num_pairs: n,
            tau: 14.0,
            sigma: 0.1,
            subset_size: 200,
            seed: 7,
        })
        .generate()
    }

    fn ground_truth_responses(
        workload: &Workload,
        requests: &[LabelRequest],
    ) -> Vec<LabelResponse> {
        requests
            .iter()
            .map(|request| LabelResponse {
                pair_id: request.pair_id,
                label: workload.pair(request.index).ground_truth(),
            })
            .collect()
    }

    fn drive_manually(session: &mut LabelingSession<'_>) -> OptimizationOutcome {
        let workload = session.workload();
        let mut responses = Vec::new();
        loop {
            match session.step(&responses).unwrap() {
                Step::Done(outcome) => return outcome,
                Step::NeedLabels(requests) => {
                    assert!(!requests.is_empty(), "empty NeedLabels batch");
                    responses = ground_truth_responses(workload, &requests);
                }
            }
        }
    }

    #[test]
    fn all_human_session_verifies_everything_in_one_round() {
        let w = workload(400);
        let mut session = LabelingSession::new(SessionConfig::AllHuman, &w).unwrap();
        let Step::NeedLabels(requests) = session.step(&[]).unwrap() else {
            panic!("expected a verification batch");
        };
        assert_eq!(requests.len(), w.len());
        assert_eq!(session.phase(), SessionPhase::Verification);
        let responses = ground_truth_responses(&w, &requests);
        let Step::Done(outcome) = session.step(&responses).unwrap() else {
            panic!("expected completion");
        };
        assert_eq!(session.rounds(), 1);
        assert_eq!(outcome.total_human_cost, w.len());
        assert_eq!(outcome.metrics.precision(), 1.0);
        assert_eq!(outcome.metrics.recall(), 1.0);
        // Stepping a completed session is idempotent.
        let Step::Done(again) = session.step(&[]).unwrap() else { panic!("still done") };
        assert_eq!(again.solution, outcome.solution);
        assert!(session.is_done());
        assert_eq!(session.phase(), SessionPhase::Done);
    }

    #[test]
    fn batches_contain_only_distinct_unanswered_pairs() {
        let w = workload(8_000);
        let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
        for kind in OptimizerKind::all() {
            let config = SessionConfig::for_kind(kind, requirement);
            let mut session = LabelingSession::new(config, &w).unwrap();
            let mut answered: BTreeSet<PairId> = BTreeSet::new();
            let mut responses = Vec::new();
            loop {
                match session.step(&responses).unwrap() {
                    Step::Done(_) => break,
                    Step::NeedLabels(requests) => {
                        let mut in_batch = BTreeSet::new();
                        for request in &requests {
                            assert!(
                                in_batch.insert(request.pair_id),
                                "{kind:?}: duplicate pair {} within a batch",
                                request.pair_id
                            );
                            assert!(
                                !answered.contains(&request.pair_id),
                                "{kind:?}: pair {} requested after being answered",
                                request.pair_id
                            );
                        }
                        answered.extend(in_batch);
                        responses = ground_truth_responses(&w, &requests);
                    }
                }
            }
            assert!(session.rounds() > 0, "{kind:?}: no batches emitted");
        }
    }

    #[test]
    fn manual_stepping_matches_oracle_driving() {
        let w = workload(8_000);
        let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
        let config = SessionConfig::for_kind(OptimizerKind::PartialSampling, requirement);
        let manual = drive_manually(&mut LabelingSession::new(config, &w).unwrap());
        let mut oracle = GroundTruthOracle::new();
        let driven = LabelingSession::new(config, &w).unwrap().drive(&mut oracle).unwrap();
        assert_eq!(manual.solution, driven.solution);
        assert_eq!(manual.assignment, driven.assignment);
        assert_eq!(manual.total_human_cost, driven.total_human_cost);
        assert_eq!(manual.total_human_cost, oracle.labels_issued());
    }

    #[test]
    fn partial_responses_are_tolerated_and_reemitted() {
        let w = workload(4_000);
        let requirement = QualityRequirement::new(0.85, 0.85, 0.9).unwrap();
        let config = SessionConfig::for_kind(OptimizerKind::Baseline, requirement);
        let reference = drive_manually(&mut LabelingSession::new(config, &w).unwrap());
        let mut session = LabelingSession::new(config, &w).unwrap();
        let mut responses: Vec<LabelResponse> = Vec::new();
        let outcome = loop {
            match session.step(&responses).unwrap() {
                Step::Done(outcome) => break outcome,
                Step::NeedLabels(requests) => {
                    // Answer only (the first) half of every batch; the rest is
                    // re-emitted by the next step.
                    let half = requests.len().div_ceil(2);
                    responses = ground_truth_responses(&w, &requests[..half]);
                }
            }
        };
        assert_eq!(outcome.solution, reference.solution);
        assert_eq!(outcome.total_human_cost, reference.total_human_cost);
    }

    #[test]
    fn resume_from_answered_log_reaches_the_same_outcome() {
        let w = workload(8_000);
        let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
        let config = SessionConfig::for_kind(OptimizerKind::Hybrid, requirement);
        let reference = drive_manually(&mut LabelingSession::new(config, &w).unwrap());

        // Run a fresh session for a few rounds, checkpoint, drop it.
        let mut session = LabelingSession::new(config, &w).unwrap();
        let mut responses = Vec::new();
        for _ in 0..4 {
            match session.step(&responses).unwrap() {
                Step::Done(_) => break,
                Step::NeedLabels(requests) => {
                    responses = ground_truth_responses(&w, &requests);
                }
            }
        }
        // Absorb the last responses so the log covers them, then checkpoint.
        let _ = session.step(&responses).unwrap();
        let log = session.answered_log().to_vec();
        drop(session);

        let mut resumed = LabelingSession::resume(config, &w, &log).unwrap();
        let outcome = drive_manually(&mut resumed);
        assert_eq!(outcome.solution, reference.solution);
        assert_eq!(outcome.assignment, reference.assignment);
        assert_eq!(outcome.total_human_cost, reference.total_human_cost);
    }

    #[test]
    fn polls_and_partial_responses_do_not_inflate_round_trips() {
        let w = workload(2_000);
        let mut session = LabelingSession::new(SessionConfig::AllHuman, &w).unwrap();
        let Step::NeedLabels(requests) = session.step(&[]).unwrap() else {
            panic!("expected a verification batch");
        };
        assert_eq!(session.rounds(), 1);
        // Zero-progress polls re-emit the outstanding batch without counting.
        for _ in 0..3 {
            let _ = session.step(&[]).unwrap();
        }
        assert_eq!(session.rounds(), 1);
        // Partial responses re-emit the remainder without counting: the
        // original dispatch wave is still outstanding with the workers.
        let half = requests.len() / 2;
        let responses = ground_truth_responses(&w, &requests[..half]);
        let Step::NeedLabels(rest) = session.step(&responses).unwrap() else {
            panic!("expected the remainder to be re-emitted");
        };
        assert_eq!(rest.len(), requests.len() - half);
        assert_eq!(session.rounds(), 1);
        let responses = ground_truth_responses(&w, &rest);
        assert!(matches!(session.step(&responses).unwrap(), Step::Done(_)));
        assert_eq!(session.rounds(), 1);
    }

    #[test]
    fn late_responses_after_completion_do_not_pollute_the_checkpoint_log() {
        let w = workload(400);
        let mut session = LabelingSession::new(SessionConfig::AllHuman, &w).unwrap();
        let Step::NeedLabels(requests) = session.step(&[]).unwrap() else {
            panic!("expected a verification batch");
        };
        let responses = ground_truth_responses(&w, &requests);
        let Step::Done(outcome) = session.step(&responses).unwrap() else {
            panic!("expected completion");
        };
        let log_len = session.answered_log().len();
        // A straggler response arriving after completion is ignored: the log
        // (and a resume from it) keeps matching the stored outcome's cost.
        let straggler = ground_truth_responses(&w, &requests[..1]);
        assert!(matches!(session.step(&straggler).unwrap(), Step::Done(_)));
        assert_eq!(session.answered_log().len(), log_len);
        assert_eq!(session.state().outcome().unwrap().total_human_cost, outcome.total_human_cost);
    }

    #[test]
    fn resume_rejects_logs_that_reference_foreign_pairs() {
        let w = workload(400);
        let log = vec![LabelResponse { pair_id: PairId(u64::MAX), label: Label::Match }];
        assert!(matches!(
            LabelingSession::resume(SessionConfig::AllHuman, &w, &log),
            Err(HumoError::InvalidResponse(_))
        ));
    }

    #[test]
    fn responses_for_unknown_pairs_are_rejected() {
        let w = workload(400);
        let mut session = LabelingSession::new(SessionConfig::AllHuman, &w).unwrap();
        // A rejected batch is transactional: the valid response preceding the
        // bogus one must not leak into the answered log or the cost basis.
        let valid = LabelResponse { pair_id: w.pair(0).id(), label: Label::Match };
        let bogus = LabelResponse { pair_id: PairId(u64::MAX), label: Label::Match };
        assert!(matches!(session.step(&[valid, bogus]), Err(HumoError::InvalidResponse(_))));
        assert!(session.answered_log().is_empty(), "rejected step must record nothing");
    }

    #[test]
    fn warm_started_sessions_resume_with_their_warm_start() {
        let w = workload(12_000);
        let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
        let config = PartialSamplingConfig::new(requirement);
        let optimizer = PartialSamplingOptimizer::new(config).unwrap();
        // Epoch 1 produces the warm-start state.
        let mut epoch1 = GroundTruthOracle::new();
        let warm = optimizer.plan(&w, &mut epoch1).unwrap().warm_start(&w);
        assert!(!warm.is_empty());
        // Reference: a warm-started session driven to completion.
        let session_config = SessionConfig::PartialSampling(config);
        let mut reference =
            LabelingSession::with_warm_start(session_config, &w, Some(warm.clone())).unwrap();
        let reference_outcome = drive_manually(&mut reference);
        // Checkpoint a second warm-started session after a few rounds, then
        // resume it with the same warm start: identical outcome and log.
        let mut session =
            LabelingSession::with_warm_start(session_config, &w, Some(warm.clone())).unwrap();
        let mut responses = Vec::new();
        for _ in 0..2 {
            match session.step(&responses).unwrap() {
                Step::Done(_) => break,
                Step::NeedLabels(requests) => {
                    responses = ground_truth_responses(&w, &requests);
                }
            }
        }
        let _ = session.step(&responses).unwrap();
        let log = session.answered_log().to_vec();
        drop(session);
        let mut resumed =
            LabelingSession::resume_with_warm_start(session_config, &w, &log, Some(warm)).unwrap();
        let resumed_outcome = drive_manually(&mut resumed);
        assert_eq!(resumed_outcome.solution, reference_outcome.solution);
        assert_eq!(resumed_outcome.assignment, reference_outcome.assignment);
        assert_eq!(resumed_outcome.total_human_cost, reference_outcome.total_human_cost);
        assert_eq!(resumed.answered_log(), reference.answered_log());
    }

    #[test]
    fn drive_reports_session_scoped_costs_for_resumed_sessions() {
        // Cost counters are session-scoped: a checkpointed session finished
        // with drive() and a *fresh* oracle must still count the labels it was
        // resumed from, and driving an already-completed session must return
        // the stored outcome unchanged.
        let w = workload(4_000);
        let requirement = QualityRequirement::new(0.85, 0.85, 0.9).unwrap();
        let config = SessionConfig::for_kind(OptimizerKind::Baseline, requirement);
        let reference = drive_manually(&mut LabelingSession::new(config, &w).unwrap());

        let mut session = LabelingSession::new(config, &w).unwrap();
        let mut responses = Vec::new();
        for _ in 0..2 {
            match session.step(&responses).unwrap() {
                Step::Done(_) => break,
                Step::NeedLabels(requests) => {
                    responses = ground_truth_responses(&w, &requests);
                }
            }
        }
        let _ = session.step(&responses).unwrap();
        let log = session.answered_log().to_vec();
        assert!(!log.is_empty());
        drop(session);

        let mut resumed = LabelingSession::resume(config, &w, &log).unwrap();
        let mut fresh_oracle = GroundTruthOracle::new();
        let driven = resumed.drive(&mut fresh_oracle).unwrap();
        assert_eq!(driven.total_human_cost, reference.total_human_cost);
        assert!(fresh_oracle.labels_issued() < driven.total_human_cost);
        // Stored outcome and later steps agree with the returned one.
        assert_eq!(resumed.state().outcome().unwrap().total_human_cost, driven.total_human_cost);
        // Driving a completed session returns the stored outcome unchanged,
        // even with an oracle that answered nothing.
        let again = resumed.drive(&mut GroundTruthOracle::new()).unwrap();
        assert_eq!(again.total_human_cost, driven.total_human_cost);
        assert_eq!(again.solution, driven.solution);
    }

    #[test]
    fn empty_workloads_are_rejected_at_the_first_step() {
        let empty = Workload::from_pairs(vec![]).unwrap();
        let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
        for kind in OptimizerKind::all() {
            let config = SessionConfig::for_kind(kind, requirement);
            let mut session = LabelingSession::new(config, &empty).unwrap();
            assert!(matches!(session.step(&[]), Err(HumoError::InvalidWorkload(_))));
        }
        // The all-human fallback accepts an empty workload (zero-round done).
        let mut session = LabelingSession::new(SessionConfig::AllHuman, &empty).unwrap();
        assert!(matches!(session.step(&[]).unwrap(), Step::Done(_)));
    }
}
