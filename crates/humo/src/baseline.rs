//! The conservative baseline optimizer (Section V of the paper, "BASE").
//!
//! BASE relies purely on the *monotonicity of precision* assumption. Starting
//! from an initial medium boundary it alternately extends the human region `DH`
//! upwards (to secure precision) and downwards (to secure recall). The match
//! proportion observed in the just-verified border region of `DH` is used as a
//! bound on the unexplored tail:
//!
//! * the top of `DH` lies *below* every pair of `D⁺`, so its observed match
//!   proportion is a lower bound on `D⁺`'s match proportion (Eq. 6/7);
//! * the bottom of `DH` lies *above* every pair of `D⁻`, so its observed match
//!   proportion is an upper bound on `D⁻`'s match proportion (Eq. 8/9).
//!
//! Because the bounds hold whenever monotonicity holds, the returned solution
//! satisfies the precision and recall requirements with 100 % confidence under
//! that assumption (Theorem 1) — at the price of a conservative, usually
//! larger-than-necessary `DH`.
//!
//! Following the paper's implementation notes, the border match proportions are
//! averaged over a handful of consecutive movement units (3–10) rather than a
//! single one, to smooth out the distribution irregularity of matching pairs.

use crate::optimizer::Optimizer;
use crate::oracle::Oracle;
use crate::requirement::QualityRequirement;
use crate::session::{
    verified_assignment, CoreOutput, Drive, LabelSlate, LabelingSession, SessionConfig,
    SessionPhase,
};
use crate::solution::{HumoSolution, OptimizationOutcome};
use crate::{HumoError, Result};
use er_core::workload::Workload;

/// Where the BASE search places its initial (empty) human region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitialBoundary {
    /// Start at the first pair whose similarity is at least this value
    /// (the paper's "boundary value of a classifier").
    Similarity(f64),
    /// Start at the median pair of the workload.
    MedianIndex,
    /// Start at an explicit workload index.
    Index(usize),
}

impl InitialBoundary {
    fn resolve(&self, workload: &Workload) -> usize {
        match self {
            InitialBoundary::Similarity(v) => workload.lower_bound_index(*v),
            InitialBoundary::MedianIndex => workload.len() / 2,
            InitialBoundary::Index(i) => (*i).min(workload.len()),
        }
    }
}

/// Configuration of the BASE optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineConfig {
    /// The quality requirement to enforce.
    pub requirement: QualityRequirement,
    /// Number of pairs per boundary movement (the paper uses equal-pair-count
    /// movements; its experiments use 200-pair subsets).
    pub unit_size: usize,
    /// Number of consecutive units whose observed match proportion is averaged
    /// when bounding the unexplored tails (the paper recommends 3–10).
    pub estimation_units: usize,
    /// Where to start the search.
    pub initial_boundary: InitialBoundary,
}

impl BaselineConfig {
    /// Creates a configuration with the paper's defaults (200-pair units, a
    /// 5-unit estimation window, starting at similarity 0.5).
    pub fn new(requirement: QualityRequirement) -> Self {
        Self {
            requirement,
            unit_size: 200,
            estimation_units: 5,
            initial_boundary: InitialBoundary::Similarity(0.5),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.unit_size == 0 {
            return Err(HumoError::InvalidConfig("unit size must be positive".to_string()));
        }
        if self.estimation_units == 0 {
            return Err(HumoError::InvalidConfig(
                "estimation window must cover at least one unit".to_string(),
            ));
        }
        Ok(())
    }
}

/// The BASE optimizer.
#[derive(Debug, Clone)]
pub struct BaselineOptimizer {
    config: BaselineConfig,
}

impl BaselineOptimizer {
    /// Creates a BASE optimizer, validating the configuration.
    pub fn new(config: BaselineConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    /// Starts a sans-I/O [`LabelingSession`] for this optimizer over the
    /// workload — the batched, resumable alternative to
    /// [`Optimizer::optimize`].
    pub fn session<'w>(&self, workload: &'w Workload) -> Result<LabelingSession<'w>> {
        LabelingSession::new(SessionConfig::Baseline(self.config), workload)
    }
}

/// Mutable state of a running BASE search.
struct SearchState<'a> {
    workload: &'a Workload,
    /// Oracle labels of workload pairs gathered so far (indexed by workload position).
    labels: Vec<Option<bool>>,
    lower: usize,
    upper: usize,
    /// Matches observed so far inside `DH`.
    matches_in_dh: usize,
}

impl<'a> SearchState<'a> {
    fn new(workload: &'a Workload, start: usize) -> Self {
        Self {
            workload,
            labels: vec![None; workload.len()],
            lower: start,
            upper: start,
            matches_in_dh: 0,
        }
    }

    fn n(&self) -> usize {
        self.workload.len()
    }

    fn dh_size(&self) -> usize {
        self.upper - self.lower
    }

    /// Records the answered labels of a freshly joined range, updating the
    /// in-DH match counter. The range must have been `require`d already.
    fn record_range(&mut self, range: std::ops::Range<usize>, slate: &LabelSlate<'_>) {
        for idx in range {
            if self.labels[idx].is_none() {
                self.labels[idx] = Some(slate.is_match(idx));
            }
            if self.labels[idx] == Some(true) {
                self.matches_in_dh += 1;
            }
        }
    }

    fn observed_matches(&self, range: std::ops::Range<usize>) -> usize {
        range.filter(|&i| self.labels[i] == Some(true)).count()
    }

    /// Match proportion of the top `window` pairs of `DH` (adjacent to `v⁺`).
    fn border_proportion_upper(&self, window: usize) -> f64 {
        let dh = self.dh_size();
        if dh == 0 {
            return 0.0;
        }
        let w = window.min(dh);
        self.observed_matches(self.upper - w..self.upper) as f64 / w as f64
    }

    /// Match proportion of the bottom `window` pairs of `DH` (adjacent to `v⁻`).
    fn border_proportion_lower(&self, window: usize) -> f64 {
        let dh = self.dh_size();
        if dh == 0 {
            return 1.0;
        }
        let w = window.min(dh);
        self.observed_matches(self.lower..self.lower + w) as f64 / w as f64
    }
}

impl BaselineOptimizer {
    /// Lower bound on the achieved precision with the current boundaries (Eq. 6).
    fn precision_lower_bound(&self, state: &SearchState<'_>, window: usize) -> f64 {
        let d_plus = state.n() - state.upper;
        if d_plus == 0 {
            return 1.0;
        }
        if state.dh_size() == 0 {
            // Nothing verified yet: no evidence about D⁺.
            return 0.0;
        }
        let r_plus = state.border_proportion_upper(window);
        let m_h = state.matches_in_dh as f64;
        (m_h + d_plus as f64 * r_plus) / (m_h + d_plus as f64)
    }

    /// Lower bound on the achieved recall with the current boundaries (Eq. 8).
    fn recall_lower_bound(&self, state: &SearchState<'_>, window: usize) -> f64 {
        let d_minus = state.lower;
        if d_minus == 0 {
            return 1.0;
        }
        if state.dh_size() == 0 {
            return 0.0;
        }
        let d_plus = state.n() - state.upper;
        let r_plus = if d_plus == 0 { 0.0 } else { state.border_proportion_upper(window) };
        let r_minus = state.border_proportion_lower(window);
        let found = state.matches_in_dh as f64 + d_plus as f64 * r_plus;
        let missed_upper_bound = d_minus as f64 * r_minus;
        if found + missed_upper_bound == 0.0 {
            return 1.0;
        }
        found / (found + missed_upper_bound)
    }

    /// The suspendable BASE search: both boundary extensions of one loop
    /// iteration are joined into a single label batch (their membership is
    /// fixed before either is labeled), so each iteration costs one label
    /// round-trip however many pairs it covers.
    pub(crate) fn session_core(
        &self,
        workload: &Workload,
        slate: &LabelSlate<'_>,
    ) -> Drive<CoreOutput> {
        if workload.is_empty() {
            return Err(HumoError::InvalidWorkload(
                "cannot optimize an empty workload".to_string(),
            )
            .into());
        }
        let cfg = &self.config;
        let n = workload.len();
        let start = cfg.initial_boundary.resolve(workload);
        let mut state = SearchState::new(workload, start);
        let window = cfg.estimation_units * cfg.unit_size;
        let alpha = cfg.requirement.precision();
        let beta = cfg.requirement.recall();

        loop {
            let precision_ok = self.precision_lower_bound(&state, window) >= alpha;
            let recall_ok = self.recall_lower_bound(&state, window) >= beta;
            if precision_ok && recall_ok {
                break;
            }
            // Alternate: extend v⁺ right for precision, then v⁻ left for recall.
            let upper_move = (!precision_ok && state.upper < n)
                .then(|| state.upper..(state.upper + cfg.unit_size).min(n));
            let lower_move = (!recall_ok && state.lower > 0)
                .then(|| state.lower.saturating_sub(cfg.unit_size)..state.lower);
            if upper_move.is_none() && lower_move.is_none() {
                // Both unsatisfied boundaries are already at the workload edges;
                // their requirements are vacuously met (empty D⁻ / D⁺).
                break;
            }
            slate.require(
                SessionPhase::BoundarySearch,
                upper_move
                    .clone()
                    .into_iter()
                    .flatten()
                    .chain(lower_move.clone().into_iter().flatten()),
            )?;
            if let Some(range) = upper_move {
                state.upper = range.end;
                state.record_range(range, slate);
            }
            if let Some(range) = lower_move {
                state.lower = range.start;
                state.record_range(range, slate);
            }
        }
        let solution = HumoSolution::new(state.lower, state.upper, n);
        let assignment = verified_assignment(&solution, workload, slate)?;
        Ok(CoreOutput { solution, assignment, warm_out: None })
    }
}

impl Optimizer for BaselineOptimizer {
    fn optimize(
        &self,
        workload: &Workload,
        oracle: &mut dyn Oracle,
    ) -> Result<OptimizationOutcome> {
        self.session(workload)?.drive(oracle)
    }

    fn name(&self) -> &'static str {
        "BASE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};

    fn monotone_workload(n: usize) -> Workload {
        SyntheticGenerator::new(SyntheticConfig {
            num_pairs: n,
            tau: 14.0,
            sigma: 0.05,
            subset_size: 200,
            seed: 3,
        })
        .generate()
    }

    fn run_base(workload: &Workload, level: f64) -> OptimizationOutcome {
        let requirement = QualityRequirement::symmetric(level).unwrap();
        let mut config = BaselineConfig::new(requirement);
        config.unit_size = 100;
        let optimizer = BaselineOptimizer::new(config).unwrap();
        let mut oracle = GroundTruthOracle::new();
        optimizer.optimize(workload, &mut oracle).unwrap()
    }

    #[test]
    fn meets_requirements_on_a_monotone_workload() {
        let w = monotone_workload(20_000);
        for level in [0.8, 0.9, 0.95] {
            let outcome = run_base(&w, level);
            assert!(
                outcome.metrics.precision() >= level,
                "precision {} below requirement {level}",
                outcome.metrics.precision()
            );
            assert!(
                outcome.metrics.recall() >= level,
                "recall {} below requirement {level}",
                outcome.metrics.recall()
            );
        }
    }

    #[test]
    fn human_cost_is_partial_and_grows_with_requirement() {
        let w = monotone_workload(20_000);
        let low = run_base(&w, 0.75);
        let high = run_base(&w, 0.95);
        assert!(low.total_human_cost > 0);
        assert!(low.total_human_cost < w.len());
        assert!(
            high.total_human_cost >= low.total_human_cost,
            "stricter requirements should not need less human work ({} vs {})",
            high.total_human_cost,
            low.total_human_cost
        );
    }

    #[test]
    fn base_has_no_sampling_overhead() {
        // Every pair BASE labels ends up inside DH.
        let w = monotone_workload(10_000);
        let outcome = run_base(&w, 0.9);
        assert_eq!(outcome.sampling_cost, 0);
        assert_eq!(outcome.total_human_cost, outcome.verification_cost);
    }

    #[test]
    fn trivial_requirement_needs_little_work() {
        let w = monotone_workload(10_000);
        let outcome = run_base(&w, 0.05);
        // With a near-zero requirement almost nothing needs verification.
        assert!(outcome.total_human_cost <= w.len() / 10);
    }

    #[test]
    fn all_boundary_variants_resolve() {
        let w = monotone_workload(5_000);
        for boundary in [
            InitialBoundary::Similarity(0.5),
            InitialBoundary::MedianIndex,
            InitialBoundary::Index(1_000),
            InitialBoundary::Index(usize::MAX),
        ] {
            let mut config = BaselineConfig::new(QualityRequirement::symmetric(0.85).unwrap());
            config.initial_boundary = boundary;
            config.unit_size = 100;
            let optimizer = BaselineOptimizer::new(config).unwrap();
            let mut oracle = GroundTruthOracle::new();
            let outcome = optimizer.optimize(&w, &mut oracle).unwrap();
            assert!(outcome.metrics.precision() >= 0.85);
            assert!(outcome.metrics.recall() >= 0.85);
        }
    }

    #[test]
    fn degenerate_workloads_are_handled() {
        // All matches.
        let w = Workload::from_scores((0..500).map(|i| (i as f64 / 500.0, true))).unwrap();
        let outcome = run_base(&w, 0.9);
        assert!(outcome.metrics.recall() >= 0.9);
        // All non-matches.
        let w = Workload::from_scores((0..500).map(|i| (i as f64 / 500.0, false))).unwrap();
        let outcome = run_base(&w, 0.9);
        assert!(outcome.metrics.precision() >= 0.9);
        // Empty workload is rejected.
        let empty = Workload::from_pairs(vec![]).unwrap();
        let optimizer = BaselineOptimizer::new(BaselineConfig::new(
            QualityRequirement::symmetric(0.9).unwrap(),
        ))
        .unwrap();
        let mut oracle = GroundTruthOracle::new();
        assert!(optimizer.optimize(&empty, &mut oracle).is_err());
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let requirement = QualityRequirement::symmetric(0.9).unwrap();
        let mut config = BaselineConfig::new(requirement);
        config.unit_size = 0;
        assert!(BaselineOptimizer::new(config).is_err());
        let mut config = BaselineConfig::new(requirement);
        config.estimation_units = 0;
        assert!(BaselineOptimizer::new(config).is_err());
    }
}
