//! Crowd labeling adapters: [`CrowdOracle`] and [`CrowdSession`] on top of
//! the `er-crowd` worker/assignment/aggregation machinery.
//!
//! `er-crowd` models the crowd in raw `u64`/`bool` vocabulary so it stays
//! dependency-free; this module speaks HUMO's: [`CrowdOracle`] implements
//! [`Oracle`], so a redundantly-voted, aggregated crowd drops into every
//! existing session driver in place of [`GroundTruthOracle`](crate::GroundTruthOracle)
//! — and [`CrowdSession`] is the sans-I/O shape, turning a labeling session's
//! [`LabelRequest`] batches into per-worker [`VoteRequest`]s and absorbed
//! [`WorkerVote`]s back into aggregated [`LabelResponse`]s. Only those
//! aggregated responses reach the session (and thus any attached write-ahead
//! log); raw votes stay in the crowd layer, so crash-safe resume is untouched:
//! a resumed driver re-votes only the pairs whose aggregation never completed,
//! and — votes being pure functions of `(worker seed, pair id)` — reproduces
//! identical labels.
//!
//! Determinism caveat: [`Aggregation::Em`] decides labels from *all* votes
//! collected so far, so a pair's label can depend on which other pairs were in
//! scope at decision time. Per-pair replay-invariance (the property the
//! kill-and-resume byte-identity tests pin) holds for
//! [`Aggregation::Majority`] and for adaptive escalation, whose decisions are
//! pure per-pair functions; use EM where aggregation scope is deterministic
//! (batch-scoped benches, offline re-aggregation).
//!
//! The `crowd.*` observability family (emitted through the configured
//! [`ObsHandle`], documented in the README schema):
//!
//! * `crowd.votes` — counter: votes recorded;
//! * `crowd.disagreements` — counter: pairs whose final vote set disagreed;
//! * `crowd.escalations` — counter: extra assignments beyond the initial
//!   redundancy;
//! * `crowd.labels` — counter: aggregated labels decided;
//! * `crowd.em.runs` / `crowd.em.iterations` — counters: EM passes and their
//!   total iterations;
//! * `crowd.reliability_abs_error` — gauge: mean |estimated − true| flip rate
//!   over the worker pool, after each EM pass (simulated workers only — the
//!   truth is known there).

use crate::oracle::Oracle;
use crate::session::{LabelRequest, LabelResponse};
use er_core::workload::{InstancePair, Label, PairId};
use er_crowd::{CrowdConfig, CrowdPlan, VoteAsk};
use er_obs::ObsHandle;
use std::collections::BTreeMap;

pub use er_crowd::{
    mix, Aggregation, CrowdStats, EmConfig, Redundancy, WorkerId, WorkerModel, WorkerReliability,
};

/// A request for one worker's vote on one requested pair. Carries the
/// originating [`LabelRequest`] so any driver that can answer label requests
/// (by index, by pair id) can answer vote requests the same way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoteRequest {
    /// The label request this vote contributes to.
    pub request: LabelRequest,
    /// The worker asked to vote.
    pub worker: WorkerId,
}

/// One worker's vote on one pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerVote {
    /// The pair voted on.
    pub pair_id: PairId,
    /// The voting worker.
    pub worker: WorkerId,
    /// The worker's verdict.
    pub label: Label,
}

/// Shared obs-emission state: the last stats snapshot already reported.
#[derive(Debug, Default)]
struct ObsCursor {
    reported: CrowdStats,
}

impl ObsCursor {
    /// Emits the delta between `stats` and the last reported snapshot on the
    /// `crowd.*` counters, plus the reliability gauge when EM ran.
    fn flush(&mut self, obs: &ObsHandle, stats: CrowdStats, reliability_error: Option<f64>) {
        if !obs.is_enabled() {
            self.reported = stats;
            return;
        }
        let prev = self.reported;
        for (name, delta) in [
            ("crowd.votes", stats.votes - prev.votes),
            ("crowd.disagreements", stats.disagreements - prev.disagreements),
            ("crowd.escalations", stats.escalations - prev.escalations),
            ("crowd.labels", stats.decided - prev.decided),
            ("crowd.em.runs", stats.em_runs - prev.em_runs),
            ("crowd.em.iterations", stats.em_iterations - prev.em_iterations),
        ] {
            if delta > 0 {
                obs.counter(name, delta);
            }
        }
        if stats.em_runs > prev.em_runs {
            if let Some(error) = reliability_error {
                obs.gauge("crowd.reliability_abs_error", error);
            }
        }
        self.reported = stats;
    }
}

/// Mean absolute error between EM-estimated and true flip rates, over the
/// workers the estimate covers (both directions of the confusion matrix).
fn reliability_abs_error(plan: &CrowdPlan, workers: &[WorkerModel]) -> Option<f64> {
    let em = plan.last_em()?;
    if em.reliabilities.is_empty() {
        return None;
    }
    let mut error = 0.0;
    let mut terms = 0usize;
    for (&worker, estimate) in &em.reliabilities {
        let Some(truth) = workers.get(worker.0 as usize) else { continue };
        error += (estimate.flip_match - truth.flip_match()).abs();
        error += (estimate.flip_unmatch - truth.flip_unmatch()).abs();
        terms += 2;
    }
    (terms > 0).then(|| error / terms as f64)
}

/// Builds a pool of `n` symmetric workers with the given error rate, each
/// seeded independently from `seed` (lane-mixed, so pools with the same seed
/// are reproducible and workers within a pool are independent).
pub fn symmetric_pool(n: usize, error_rate: f64, seed: u64) -> Vec<WorkerModel> {
    (0..n).map(|w| WorkerModel::symmetric(error_rate, mix(seed, w as u64))).collect()
}

/// A crowd of simulated workers behind the [`Oracle`] interface.
///
/// Each labeled pair is fanned out to distinct workers per the configured
/// [`Redundancy`], escalated on disagreement, and aggregated per the
/// configured [`Aggregation`]; the aggregated label is cached, so repeated
/// queries are consistent and [`Oracle::labels_issued`] counts distinct
/// *labels* (the paper's human-cost unit) while [`CrowdOracle::votes_cast`]
/// counts the underlying vote cost. With `Redundancy::Fixed(1)` and zero-noise
/// workers this oracle is byte-identical to
/// [`GroundTruthOracle`](crate::GroundTruthOracle).
#[derive(Debug)]
pub struct CrowdOracle {
    workers: Vec<WorkerModel>,
    plan: CrowdPlan,
    labeled: BTreeMap<PairId, Label>,
    obs: ObsHandle,
    cursor: ObsCursor,
}

impl CrowdOracle {
    /// Creates a crowd oracle over the given worker pool.
    ///
    /// # Panics
    /// Panics if the pool is empty or the redundancy does not fit it.
    pub fn new(
        workers: Vec<WorkerModel>,
        redundancy: Redundancy,
        aggregation: Aggregation,
        seed: u64,
    ) -> Self {
        assert!(!workers.is_empty(), "crowd oracle needs at least one worker");
        let plan =
            CrowdPlan::new(CrowdConfig { pool_size: workers.len(), redundancy, aggregation, seed });
        Self {
            workers,
            plan,
            labeled: BTreeMap::new(),
            obs: ObsHandle::default(),
            cursor: ObsCursor::default(),
        }
    }

    /// Routes the `crowd.*` events through the given handle.
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// The worker pool.
    pub fn workers(&self) -> &[WorkerModel] {
        &self.workers
    }

    /// Running crowd totals (votes, disagreements, escalations, EM passes).
    pub fn stats(&self) -> CrowdStats {
        self.plan.stats()
    }

    /// Votes cast so far.
    pub fn votes_cast(&self) -> u64 {
        self.plan.stats().votes
    }

    /// Votes per delivered label — the label-cost multiplier versus a single
    /// perfect oracle. `Redundancy::Fixed(r)` pins this at exactly `r`;
    /// adaptive redundancy lands between `min` and `max`.
    pub fn cost_multiplier(&self) -> f64 {
        let labels = self.labeled.len();
        if labels == 0 {
            return 0.0;
        }
        self.votes_cast() as f64 / labels as f64
    }

    /// Mean absolute error of the latest EM reliability estimates against the
    /// true worker flip rates, when EM has run.
    pub fn reliability_abs_error(&self) -> Option<f64> {
        reliability_abs_error(&self.plan, &self.workers)
    }

    /// The latest EM-estimated reliability per worker, when EM has run.
    pub fn estimated_reliabilities(&self) -> Option<&BTreeMap<WorkerId, WorkerReliability>> {
        self.plan.last_em().map(|em| &em.reliabilities)
    }

    fn vote(&self, ask: VoteAsk, truth_is_match: bool) -> bool {
        self.workers[ask.worker.0 as usize].vote(ask.pair, truth_is_match)
    }
}

impl Oracle for CrowdOracle {
    fn label(&mut self, pair: &InstancePair) -> Label {
        self.label_batch(&[pair]).pop().expect("one label per request")
    }

    /// Labels the batch by collecting (and possibly escalating) votes for
    /// every new pair, then aggregating once over the completed set — so an
    /// EM aggregation's scope is the accumulated vote matrix at batch
    /// boundaries, matching how an offline crowd round-trip would run.
    fn label_batch(&mut self, pairs: &[&InstancePair]) -> Vec<Label> {
        for pair in pairs {
            if self.labeled.contains_key(&pair.id()) {
                continue;
            }
            let truth_is_match = pair.ground_truth() == Label::Match;
            let mut asks = self.plan.submit(pair.id().0);
            while let Some(ask) = asks.pop() {
                let vote = self.vote(ask, truth_is_match);
                asks.extend(self.plan.absorb(ask.pair, ask.worker, vote));
            }
        }
        let completed = self.plan.take_completed();
        for (pair, is_match) in self.plan.decide(&completed) {
            self.labeled.insert(PairId(pair), Label::from_bool(is_match));
        }
        let error = reliability_abs_error(&self.plan, &self.workers);
        self.cursor.flush(&self.obs, self.plan.stats(), error);
        pairs
            .iter()
            .map(|pair| *self.labeled.get(&pair.id()).expect("batch pair was decided"))
            .collect()
    }

    fn labels_issued(&self) -> usize {
        self.labeled.len()
    }
}

/// The sans-I/O crowd wrapper: sits between a labeling session and whatever
/// answers votes (simulated workers, a task queue, real people).
///
/// Protocol, re-entrant at every step:
///
/// 1. [`submit`](CrowdSession::submit) the session's outstanding
///    [`LabelRequest`]s → dispatch the returned [`VoteRequest`]s
///    (re-submitting a known pair re-emits only its unanswered votes);
/// 2. [`absorb`](CrowdSession::absorb) arriving [`WorkerVote`]s (any order,
///    any batching) → dispatch any returned *escalation* requests;
/// 3. [`take_ready`](CrowdSession::take_ready) the aggregated
///    [`LabelResponse`]s and step the session with them.
///
/// Only aggregated responses leave this wrapper, so a session's write-ahead
/// log (and therefore crash-safe resume) never sees raw votes.
#[derive(Debug)]
pub struct CrowdSession {
    plan: CrowdPlan,
    requests: BTreeMap<PairId, LabelRequest>,
    ready: BTreeMap<PairId, Label>,
    obs: ObsHandle,
    cursor: ObsCursor,
}

impl CrowdSession {
    /// Creates a crowd session planning over a pool of `pool_size` workers.
    ///
    /// # Panics
    /// Panics if the pool is empty or the redundancy does not fit it.
    pub fn new(
        pool_size: usize,
        redundancy: Redundancy,
        aggregation: Aggregation,
        seed: u64,
    ) -> Self {
        let plan = CrowdPlan::new(CrowdConfig { pool_size, redundancy, aggregation, seed });
        Self {
            plan,
            requests: BTreeMap::new(),
            ready: BTreeMap::new(),
            obs: ObsHandle::default(),
            cursor: ObsCursor::default(),
        }
    }

    /// Routes the `crowd.*` events through the given handle.
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Submits label requests; returns the vote requests to dispatch. Pairs
    /// already decided are queued for [`take_ready`](CrowdSession::take_ready)
    /// again instead (so a driver that lost a response can always recover it).
    pub fn submit(&mut self, requests: &[LabelRequest]) -> Vec<VoteRequest> {
        let mut asks = Vec::new();
        for request in requests {
            self.requests.insert(request.pair_id, *request);
            if let Some(is_match) = self.plan.decision(request.pair_id.0) {
                self.ready.insert(request.pair_id, Label::from_bool(is_match));
                continue;
            }
            asks.extend(self.plan.submit(request.pair_id.0));
        }
        self.vote_requests(asks)
    }

    /// Absorbs worker votes; returns escalation vote requests, if any.
    pub fn absorb(&mut self, votes: &[WorkerVote]) -> Vec<VoteRequest> {
        let mut asks = Vec::new();
        for vote in votes {
            asks.extend(self.plan.absorb(vote.pair_id.0, vote.worker, vote.label == Label::Match));
        }
        self.vote_requests(asks)
    }

    /// Aggregates every pair whose voting completed and drains the resulting
    /// responses, pair-sorted.
    pub fn take_ready(&mut self) -> Vec<LabelResponse> {
        let completed = self.plan.take_completed();
        for (pair, is_match) in self.plan.decide(&completed) {
            self.ready.insert(PairId(pair), Label::from_bool(is_match));
        }
        self.cursor.flush(&self.obs, self.plan.stats(), None);
        std::mem::take(&mut self.ready)
            .into_iter()
            .map(|(pair_id, label)| LabelResponse { pair_id, label })
            .collect()
    }

    /// All asked-but-unanswered vote requests — what a driver re-dispatches
    /// after losing its queue (resume, failover).
    pub fn outstanding(&self) -> Vec<VoteRequest> {
        let asks = self.plan.outstanding();
        asks.into_iter()
            .filter_map(|ask| {
                let request = self.requests.get(&PairId(ask.pair))?;
                Some(VoteRequest { request: *request, worker: ask.worker })
            })
            .collect()
    }

    /// Running crowd totals.
    pub fn stats(&self) -> CrowdStats {
        self.plan.stats()
    }

    fn vote_requests(&self, asks: Vec<VoteAsk>) -> Vec<VoteRequest> {
        asks.into_iter()
            .filter_map(|ask| {
                let request = self.requests.get(&PairId(ask.pair))?;
                Some(VoteRequest { request: *request, worker: ask.worker })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;

    fn pair(id: u64, sim: f64, is_match: bool) -> InstancePair {
        InstancePair::new(PairId(id), sim, Label::from_bool(is_match))
    }

    #[test]
    fn fixed1_zero_noise_matches_ground_truth_oracle() {
        let mut crowd = CrowdOracle::new(
            symmetric_pool(4, 0.0, 11),
            Redundancy::Fixed(1),
            Aggregation::Majority,
            7,
        );
        let mut truth = GroundTruthOracle::new();
        let pairs: Vec<InstancePair> = (0..200).map(|i| pair(i, 0.5, i % 3 == 0)).collect();
        for p in &pairs {
            assert_eq!(crowd.label(p), truth.label(p));
        }
        assert_eq!(crowd.labels_issued(), truth.labels_issued());
        assert_eq!(crowd.votes_cast(), 200);
        assert!((crowd.cost_multiplier() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn crowd_oracle_is_consistent_and_order_invariant() {
        let build = || {
            CrowdOracle::new(
                symmetric_pool(7, 0.25, 3),
                Redundancy::Adaptive { min: 2, max: 5 },
                Aggregation::Majority,
                19,
            )
        };
        let pairs: Vec<InstancePair> = (0..300).map(|i| pair(i, 0.5, i % 2 == 0)).collect();
        let forward: Vec<Label> = {
            let mut oracle = build();
            pairs.iter().map(|p| oracle.label(p)).collect()
        };
        let mut reversed_oracle = build();
        let mut reversed: Vec<(u64, Label)> =
            pairs.iter().rev().map(|p| (p.id().0, reversed_oracle.label(p))).collect();
        reversed.sort_by_key(|&(id, _)| id);
        let batched: Vec<Label> = {
            let mut oracle = build();
            let refs: Vec<&InstancePair> = pairs.iter().collect();
            oracle.label_batch(&refs)
        };
        assert_eq!(forward, reversed.into_iter().map(|(_, l)| l).collect::<Vec<_>>());
        assert_eq!(forward, batched);
        // Re-asking changes nothing and costs nothing.
        let mut oracle = build();
        let first = oracle.label(&pairs[0]);
        let votes = oracle.votes_cast();
        assert_eq!(oracle.label(&pairs[0]), first);
        assert_eq!(oracle.votes_cast(), votes);
        assert_eq!(oracle.labels_issued(), 1);
    }

    #[test]
    fn fixed_r_multiplies_votes_not_labels() {
        let mut oracle = CrowdOracle::new(
            symmetric_pool(9, 0.2, 5),
            Redundancy::Fixed(3),
            Aggregation::Majority,
            2,
        );
        let pairs: Vec<InstancePair> = (0..150).map(|i| pair(i, 0.5, i % 4 == 0)).collect();
        let refs: Vec<&InstancePair> = pairs.iter().collect();
        oracle.label_batch(&refs);
        assert_eq!(oracle.labels_issued(), 150);
        assert_eq!(oracle.votes_cast(), 450);
        assert!((oracle.cost_multiplier() - 3.0).abs() < 1e-12);
        assert!(oracle.stats().disagreements > 0, "20% error at r=3 must disagree sometimes");
    }

    #[test]
    fn crowd_session_roundtrip_aggregates_to_responses() {
        let workers = symmetric_pool(6, 0.0, 21);
        let mut session = CrowdSession::new(6, Redundancy::Fixed(3), Aggregation::Majority, 13);
        let requests: Vec<LabelRequest> = (0..20)
            .map(|i| LabelRequest { pair_id: PairId(i), index: i as usize, similarity: 0.5 })
            .collect();
        let vote_requests = session.submit(&requests);
        assert_eq!(vote_requests.len(), 60);
        // Deliver votes out of order, in two batches.
        let votes: Vec<WorkerVote> = vote_requests
            .iter()
            .rev()
            .map(|vr| WorkerVote {
                pair_id: vr.request.pair_id,
                worker: vr.worker,
                label: Label::from_bool(
                    workers[vr.worker.0 as usize]
                        .vote(vr.request.pair_id.0, vr.request.index % 2 == 0),
                ),
            })
            .collect();
        let (first, second) = votes.split_at(25);
        assert!(session.absorb(first).is_empty(), "zero noise never escalates");
        let outstanding = session.outstanding();
        assert_eq!(outstanding.len(), 35, "unanswered votes are re-dispatchable");
        assert!(session.absorb(second).is_empty());
        let responses = session.take_ready();
        assert_eq!(responses.len(), 20);
        for response in &responses {
            assert_eq!(
                response.label,
                Label::from_bool(response.pair_id.0 % 2 == 0),
                "zero-noise crowd must deliver ground truth"
            );
        }
        // Re-submitting a decided pair re-surfaces its response.
        assert!(session.submit(&requests[..1]).is_empty());
        let again = session.take_ready();
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].pair_id, requests[0].pair_id);
    }
}
